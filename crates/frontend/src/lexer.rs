//! Hand-written tokenizer for the surface NRC syntax.
//!
//! Produces a flat token stream with byte spans and 1-based line/column
//! positions. Unicode alternates from the paper's notation (`⟨ ⟩ ∅ ⊎ ∪ ≠ ≤
//! ≥ λ ⇐`) lex to the same tokens as their ASCII spellings; `//` starts a
//! line comment.

use crate::error::CompileError;

/// A token of the surface syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (variable, input, field or assignment name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real (floating-point) literal.
    Real(f64),
    /// String literal (unescaped contents).
    Str(String),

    /// `for`
    For,
    /// `in`
    In,
    /// `union` / `⊎` / `∪`
    Union,
    /// `let`
    Let,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `lambda` / `λ`
    Lambda,
    /// `match`
    Match,
    /// `dedup`
    Dedup,
    /// `get`
    Get,
    /// `groupBy`
    GroupBy,
    /// `sumBy`
    SumBy,
    /// `NewLabel`
    NewLabel,
    /// `Lookup`
    Lookup,
    /// `MatLookup`
    MatLookup,
    /// `BagToDict`
    BagToDict,
    /// `DictTreeUnion`
    DictTreeUnion,
    /// `true`
    True,
    /// `false`
    False,
    /// `NULL`
    Null,
    /// `date` (both the literal constructor and the scalar type)
    Date,

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<` / `⟨` — tuple open or less-than, depending on position
    Lt,
    /// `>` / `⟩` — tuple close or greater-than, depending on position
    Gt,
    /// `<=` / `⇐` — assignment arrow at statement scope, less-or-equal otherwise
    Le,
    /// `>=` / `≥`
    Ge,
    /// `==`
    EqEq,
    /// `!=` / `≠`
    Ne,
    /// `∅` — empty bag glyph
    EmptySet,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `.`
    Dot,
    /// `#`
    Hash,
    /// `->`
    Arrow,
    /// `?`
    Question,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl Tok {
    /// A short human-readable description used in "expected" sets.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(_) => "identifier".into(),
            Tok::Int(_) => "integer literal".into(),
            Tok::Real(_) => "real literal".into(),
            Tok::Str(_) => "string literal".into(),
            Tok::For => "'for'".into(),
            Tok::In => "'in'".into(),
            Tok::Union => "'union'".into(),
            Tok::Let => "'let'".into(),
            Tok::If => "'if'".into(),
            Tok::Then => "'then'".into(),
            Tok::Else => "'else'".into(),
            Tok::Lambda => "'lambda'".into(),
            Tok::Match => "'match'".into(),
            Tok::Dedup => "'dedup'".into(),
            Tok::Get => "'get'".into(),
            Tok::GroupBy => "'groupBy'".into(),
            Tok::SumBy => "'sumBy'".into(),
            Tok::NewLabel => "'NewLabel'".into(),
            Tok::Lookup => "'Lookup'".into(),
            Tok::MatLookup => "'MatLookup'".into(),
            Tok::BagToDict => "'BagToDict'".into(),
            Tok::DictTreeUnion => "'DictTreeUnion'".into(),
            Tok::True => "'true'".into(),
            Tok::False => "'false'".into(),
            Tok::Null => "'NULL'".into(),
            Tok::Date => "'date'".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::LBrace => "'{'".into(),
            Tok::RBrace => "'}'".into(),
            Tok::LBracket => "'['".into(),
            Tok::RBracket => "']'".into(),
            Tok::Lt => "'<'".into(),
            Tok::Gt => "'>'".into(),
            Tok::Le => "'<='".into(),
            Tok::Ge => "'>='".into(),
            Tok::EqEq => "'=='".into(),
            Tok::Ne => "'!='".into(),
            Tok::EmptySet => "'∅'".into(),
            Tok::Comma => "','".into(),
            Tok::Semi => "';'".into(),
            Tok::Colon => "':'".into(),
            Tok::Assign => "':='".into(),
            Tok::Dot => "'.'".into(),
            Tok::Hash => "'#'".into(),
            Tok::Arrow => "'->'".into(),
            Tok::Question => "'?'".into(),
            Tok::Plus => "'+'".into(),
            Tok::Minus => "'-'".into(),
            Tok::Star => "'*'".into(),
            Tok::Slash => "'/'".into(),
            Tok::AndAnd => "'&&'".into(),
            Tok::OrOr => "'||'".into(),
            Tok::Bang => "'!'".into(),
            Tok::Eq => "'='".into(),
            Tok::Eof => "end of input".into(),
        }
    }

    /// True for reserved words that cannot be used as binders.
    pub fn is_keyword(&self) -> bool {
        matches!(
            self,
            Tok::For
                | Tok::In
                | Tok::Union
                | Tok::Let
                | Tok::If
                | Tok::Then
                | Tok::Else
                | Tok::Lambda
                | Tok::Match
                | Tok::Dedup
                | Tok::Get
                | Tok::GroupBy
                | Tok::SumBy
                | Tok::NewLabel
                | Tok::Lookup
                | Tok::MatLookup
                | Tok::BagToDict
                | Tok::DictTreeUnion
                | Tok::True
                | Tok::False
                | Tok::Null
                | Tok::Date
        )
    }

    /// The keyword's spelling, for positions (like field names after `.`)
    /// where reserved words are acceptable as plain names.
    pub fn keyword_spelling(&self) -> Option<&'static str> {
        Some(match self {
            Tok::For => "for",
            Tok::In => "in",
            Tok::Union => "union",
            Tok::Let => "let",
            Tok::If => "if",
            Tok::Then => "then",
            Tok::Else => "else",
            Tok::Lambda => "lambda",
            Tok::Match => "match",
            Tok::Dedup => "dedup",
            Tok::Get => "get",
            Tok::GroupBy => "groupBy",
            Tok::SumBy => "sumBy",
            Tok::NewLabel => "NewLabel",
            Tok::Lookup => "Lookup",
            Tok::MatLookup => "MatLookup",
            Tok::BagToDict => "BagToDict",
            Tok::DictTreeUnion => "DictTreeUnion",
            Tok::True => "true",
            Tok::False => "false",
            Tok::Null => "NULL",
            Tok::Date => "date",
            _ => return None,
        })
    }
}

/// Byte span and 1-based source position of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the token's first character.
    pub offset: usize,
    /// Byte length of the token.
    pub len: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters, not bytes).
    pub col: usize,
}

/// Returns the source line containing 1-based `line` (without its newline).
pub(crate) fn source_line(src: &str, line: usize) -> String {
    src.lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .to_string()
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "for" => Tok::For,
        "in" => Tok::In,
        "union" => Tok::Union,
        "let" => Tok::Let,
        "if" => Tok::If,
        "then" => Tok::Then,
        "else" => Tok::Else,
        "lambda" => Tok::Lambda,
        "match" => Tok::Match,
        "dedup" => Tok::Dedup,
        "get" => Tok::Get,
        "groupBy" => Tok::GroupBy,
        "sumBy" => Tok::SumBy,
        "NewLabel" => Tok::NewLabel,
        "Lookup" => Tok::Lookup,
        "MatLookup" => Tok::MatLookup,
        "BagToDict" => Tok::BagToDict,
        "DictTreeUnion" => Tok::DictTreeUnion,
        "true" => Tok::True,
        "false" => Tok::False,
        "NULL" => Tok::Null,
        "date" => Tok::Date,
        _ => return None,
    })
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or(self.src.len())
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>, line: usize, col: usize) -> CompileError {
        CompileError::new(message, line, col, Vec::new(), source_line(self.src, line))
    }

    fn here(&self) -> Span {
        Span {
            offset: self.offset(),
            len: 0,
            line: self.line,
            col: self.col,
        }
    }

    fn lex_number(&mut self) -> Result<(Tok, Span), CompileError> {
        let start = self.here();
        let begin = self.offset();
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_real = false;
        // A '.' is part of the number only when a digit follows, so `x.1`
        // style projections never collide with reals.
        if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_real = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e') | Some('E')) {
            let mut ahead = self.pos + 1;
            if matches!(self.chars.get(ahead), Some(&(_, '+')) | Some(&(_, '-'))) {
                ahead += 1;
            }
            if matches!(self.chars.get(ahead), Some(&(_, c)) if c.is_ascii_digit()) {
                is_real = true;
                while self.pos < ahead {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = &self.src[begin..self.offset()];
        let span = Span {
            offset: begin,
            len: self.offset() - begin,
            line: start.line,
            col: start.col,
        };
        if is_real {
            match text.parse::<f64>() {
                Ok(r) => Ok((Tok::Real(r), span)),
                Err(_) => Err(self.error(
                    format!("invalid real literal `{text}`"),
                    span.line,
                    span.col,
                )),
            }
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok((Tok::Int(i), span)),
                Err(_) => Err(self.error(
                    format!("integer literal `{text}` out of range"),
                    span.line,
                    span.col,
                )),
            }
        }
    }

    fn lex_string(&mut self) -> Result<(Tok, Span), CompileError> {
        let span_start = self.here();
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(self.error(
                        "unterminated string literal",
                        span_start.line,
                        span_start.col,
                    ))
                }
                Some('"') => break,
                Some('\\') => {
                    let (eline, ecol) = (self.line, self.col);
                    match self.bump() {
                        Some('\\') => out.push('\\'),
                        Some('"') => out.push('"'),
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some('u') => {
                            if self.bump() != Some('{') {
                                return Err(self.error(
                                    "invalid escape: expected `{` after `\\u`",
                                    eline,
                                    ecol,
                                ));
                            }
                            let mut hex = String::new();
                            loop {
                                match self.bump() {
                                    Some('}') => break,
                                    Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                                    _ => {
                                        return Err(self.error(
                                            "invalid `\\u{...}` escape",
                                            eline,
                                            ecol,
                                        ))
                                    }
                                }
                            }
                            let cp = u32::from_str_radix(&hex, 16)
                                .ok()
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    self.error("invalid `\\u{...}` escape", eline, ecol)
                                })?;
                            out.push(cp);
                        }
                        other => {
                            let shown = other.map(|c| c.to_string()).unwrap_or_default();
                            return Err(self.error(
                                format!("invalid escape `\\{shown}` in string literal"),
                                eline,
                                ecol,
                            ));
                        }
                    }
                }
                Some(c) => out.push(c),
            }
        }
        let span = Span {
            offset: span_start.offset,
            len: self.offset() - span_start.offset,
            line: span_start.line,
            col: span_start.col,
        };
        Ok((Tok::Str(out), span))
    }
}

/// Tokenizes `src` into a flat stream ending in [`Tok::Eof`].
pub(crate) fn lex(src: &str) -> Result<Vec<(Tok, Span)>, CompileError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        // Skip whitespace and `//` comments.
        loop {
            match lx.peek() {
                Some(c) if c.is_whitespace() => {
                    lx.bump();
                }
                Some('/') if lx.peek2() == Some('/') => {
                    while !matches!(lx.peek(), None | Some('\n')) {
                        lx.bump();
                    }
                }
                _ => break,
            }
        }
        let span = lx.here();
        let c = match lx.peek() {
            None => {
                out.push((Tok::Eof, span));
                return Ok(out);
            }
            Some(c) => c,
        };
        if c.is_ascii_digit() {
            out.push(lx.lex_number()?);
            continue;
        }
        if c == '"' {
            out.push(lx.lex_string()?);
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let begin = lx.offset();
            while matches!(lx.peek(), Some(ch) if ch.is_ascii_alphanumeric() || ch == '_') {
                lx.bump();
            }
            let word = &src[begin..lx.offset()];
            let tok = keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()));
            out.push((
                tok,
                Span {
                    offset: begin,
                    len: lx.offset() - begin,
                    line: span.line,
                    col: span.col,
                },
            ));
            continue;
        }
        // Punctuation, multi-char operators and unicode alternates.
        let mut push1 = |lx: &mut Lexer, tok: Tok| {
            lx.bump();
            out.push((
                tok,
                Span {
                    offset: span.offset,
                    len: lx.offset() - span.offset,
                    line: span.line,
                    col: span.col,
                },
            ));
        };
        let two = |lx: &Lexer| lx.peek2();
        match c {
            '(' => push1(&mut lx, Tok::LParen),
            ')' => push1(&mut lx, Tok::RParen),
            '{' => push1(&mut lx, Tok::LBrace),
            '}' => push1(&mut lx, Tok::RBrace),
            '[' => push1(&mut lx, Tok::LBracket),
            ']' => push1(&mut lx, Tok::RBracket),
            ',' => push1(&mut lx, Tok::Comma),
            ';' => push1(&mut lx, Tok::Semi),
            '#' => push1(&mut lx, Tok::Hash),
            '?' => push1(&mut lx, Tok::Question),
            '+' => push1(&mut lx, Tok::Plus),
            '*' => push1(&mut lx, Tok::Star),
            '/' => push1(&mut lx, Tok::Slash),
            '.' => push1(&mut lx, Tok::Dot),
            '⟨' => push1(&mut lx, Tok::Lt),
            '⟩' => push1(&mut lx, Tok::Gt),
            '∅' => push1(&mut lx, Tok::EmptySet),
            '⊎' | '∪' => push1(&mut lx, Tok::Union),
            '≠' => push1(&mut lx, Tok::Ne),
            '≤' => push1(&mut lx, Tok::Le),
            '≥' => push1(&mut lx, Tok::Ge),
            'λ' => push1(&mut lx, Tok::Lambda),
            '⇐' => push1(&mut lx, Tok::Le),
            '-' => {
                if two(&lx) == Some('>') {
                    lx.bump();
                    push1(&mut lx, Tok::Arrow);
                } else {
                    push1(&mut lx, Tok::Minus);
                }
            }
            ':' => {
                if two(&lx) == Some('=') {
                    lx.bump();
                    push1(&mut lx, Tok::Assign);
                } else {
                    push1(&mut lx, Tok::Colon);
                }
            }
            '<' => {
                if two(&lx) == Some('=') {
                    lx.bump();
                    push1(&mut lx, Tok::Le);
                } else {
                    push1(&mut lx, Tok::Lt);
                }
            }
            '>' => {
                if two(&lx) == Some('=') {
                    lx.bump();
                    push1(&mut lx, Tok::Ge);
                } else {
                    push1(&mut lx, Tok::Gt);
                }
            }
            '=' => {
                if two(&lx) == Some('=') {
                    lx.bump();
                    push1(&mut lx, Tok::EqEq);
                } else {
                    push1(&mut lx, Tok::Eq);
                }
            }
            '!' => {
                if two(&lx) == Some('=') {
                    lx.bump();
                    push1(&mut lx, Tok::Ne);
                } else {
                    push1(&mut lx, Tok::Bang);
                }
            }
            '&' => {
                if two(&lx) == Some('&') {
                    lx.bump();
                    push1(&mut lx, Tok::AndAnd);
                } else {
                    return Err(lx.error(
                        "unexpected character `&` (did you mean `&&`?)",
                        span.line,
                        span.col,
                    ));
                }
            }
            '|' => {
                if two(&lx) == Some('|') {
                    lx.bump();
                    push1(&mut lx, Tok::OrOr);
                } else {
                    return Err(lx.error(
                        "unexpected character `|` (did you mean `||`?)",
                        span.line,
                        span.col,
                    ));
                }
            }
            other => {
                return Err(lx.error(
                    format!("unexpected character `{other}`"),
                    span.line,
                    span.col,
                ))
            }
        }
    }
}
