//! # trance-frontend
//!
//! The textual surface syntax of **trance-rs**: a hand-written lexer and
//! recursive-descent parser that turn source text into the [`trance_nrc`]
//! AST, with spanned [`CompileError`] diagnostics (line/column, expected
//! token sets, a source excerpt) instead of panics. Parsed programs flow
//! through the existing `trance_nrc::typecheck` and the existing lowering,
//! so they execute on every compilation strategy unchanged.
//!
//! The grammar is the exact language `trance_nrc::pretty` prints, which
//! makes `parse(pretty(e)) == e` a checkable round-trip law (exercised by
//! the seeded fuzzer in the compiler's test suite).
//!
//! ## Grammar (EBNF)
//!
//! ```text
//! program   ::= { ident "<=" expr } | expr
//!
//! expr      ::= "for" ident "in" union_expr "union" expr
//!             | "let" ident ":=" expr "in" expr
//!             | "if" expr "then" expr [ "else" expr ]
//!             | "lambda" ident "." expr
//!             | "match" proj_expr "=" "NewLabel" "#" int
//!                   "(" [ ident { "," ident } ] ")" "then" expr
//!             | union_expr
//! union_expr::= or_expr { ("union" | "DictTreeUnion") or_expr }
//! or_expr   ::= and_expr { "||" and_expr }
//! and_expr  ::= not_expr { "&&" not_expr }
//! not_expr  ::= "!" cmp_expr | cmp_expr
//! cmp_expr  ::= add_expr [ ("==" | "!=" | "<" | "<=" | ">" | ">=") add_expr ]
//! add_expr  ::= mul_expr { ("+" | "-") mul_expr }
//! mul_expr  ::= proj_expr { ("*" | "/") proj_expr }
//! proj_expr ::= primary { "." field }
//! primary   ::= literal | ident | "(" expr ")"
//!             | "<" [ field ":=" expr { "," field ":=" expr } [ "," ] ] ">"
//!             | "{" "}" [ ":" type ]            (* empty bag, opt. annotated *)
//!             | "{" expr "}"                    (* singleton bag *)
//!             | "get" "(" expr ")" | "dedup" "(" expr ")"
//!             | "groupBy" "[" fields ";" "group" "=" field "]" "(" expr ")"
//!             | "sumBy" "[" fields ";" fields "]" "(" expr ")"
//!             | "NewLabel" "#" int "(" [ field ":=" expr { "," ... } ] ")"
//!             | "Lookup" "(" expr "," expr ")"
//!             | "MatLookup" "(" expr "," expr ")"
//!             | "BagToDict" "(" expr ")"
//! literal   ::= int | real | string | "true" | "false" | "NULL"
//!             | "date" "(" int ")" | "-" (int | real)
//! type      ::= "int" | "real" | "string" | "bool" | "date" | "?"
//!             | "Bag" "(" type ")" | "Label" [ "->" "Bag" "(" type ")" ]
//!             | "<" [ field ":" type { "," field ":" type } ] ">"
//! ```
//!
//! Notes on the fine print:
//!
//! * **Control forms** (`for`, `let`, `if`, `lambda`, `match`) are only
//!   allowed where a full expression is expected (bodies, branches,
//!   parenthesised/braced positions, tuple fields). As an *operand* of an
//!   infix operator they must be parenthesised; the printer inserts those
//!   parentheses.
//! * **Tuples vs. comparisons**: inside a tuple literal the tokens `>` and
//!   `>=` close the tuple rather than acting as comparison operators, so
//!   `<u := x.a>` parses as expected; write `<u := (a > b)>` to compare.
//!   Parentheses, brackets and braces reset that rule.
//! * **Comparisons are non-associative**: `a < b < c` is a parse error
//!   suggesting parentheses.
//! * **`<=` at program scope**: `name <= expr` is an assignment when a
//!   statement is expected; use `parse_expr` (or parentheses) for a
//!   top-level `<=` comparison.
//! * **Unicode alternates** from the paper's notation are accepted:
//!   `⟨` `⟩` (tuple), `∅` (empty bag), `⊎`/`∪` (union), `≠` `≤` `≥`,
//!   `λ` (lambda) and `⇐` (assignment).
//! * `//` starts a line comment.
//! * Nesting depth is limited (see [`MAX_DEPTH`]); exceeding it is a
//!   [`CompileError`], not a stack overflow.
//! * Composite constants (bag/tuple/label *values* embedded as literals)
//!   and non-finite reals have no surface spelling; every scalar constant
//!   round-trips.

#![warn(missing_docs)]

mod error;
mod lexer;
mod parser;

pub use error::CompileError;
pub use lexer::{Span, Tok};
pub use parser::{parse_expr, parse_program, parse_type, MAX_DEPTH};

/// Convenience result alias for front-end operations.
pub type Result<T> = std::result::Result<T, CompileError>;
