//! Recursive-descent parser turning token streams into `trance_nrc` ASTs.
//!
//! Precedence (loosest to tightest): control forms (`for`/`let`/`if`/
//! `lambda`/`match`), `union`/`DictTreeUnion`, `||`, `&&`, `!`,
//! comparisons (non-associative), `+ -`, `* /`, projection, atoms.
//! Inside a tuple literal `>`/`>=` close the tuple instead of comparing;
//! parentheses, brackets and braces restore the usual reading.

use trance_nrc::{CmpOp, Expr, PrimOp, Program, TupleType, Type, Value};

use crate::error::CompileError;
use crate::lexer::{lex, source_line, Span, Tok};

/// Maximum expression/type nesting depth. Exceeding it is a [`CompileError`]
/// ("expression nesting exceeds…"), never a stack overflow — the limit is
/// sized so the recursive-descent frames fit comfortably in a 2 MiB thread
/// stack even in debug builds.
pub const MAX_DEPTH: usize = 100;

type PResult<T> = Result<T, CompileError>;

/// Parses a single expression. The whole input must be consumed.
pub fn parse_expr(src: &str) -> PResult<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.expr(0)?;
    p.expect_eof()?;
    Ok(e)
}

/// Parses a program: a sequence of `name <= expr` assignments. A bare
/// expression is accepted as a single-assignment program named `Q`.
pub fn parse_program(src: &str) -> PResult<Program> {
    let mut p = Parser::new(src)?;
    let mut prog = Program::new();
    if matches!(p.peek(), Tok::Ident(_)) && matches!(p.peek_at(1), Tok::Le) {
        loop {
            let name = match p.peek().clone() {
                Tok::Ident(n) => {
                    p.bump();
                    n
                }
                Tok::Eof => break,
                other => {
                    return Err(p.err_here(
                        format!(
                            "expected an assignment or end of input, found {}",
                            other.describe()
                        ),
                        vec!["identifier".into(), "end of input".into()],
                    ))
                }
            };
            p.expect(Tok::Le)?;
            prog.assign(name, p.expr(0)?);
        }
    } else {
        let e = p.expr(0)?;
        p.expect_eof()?;
        prog.assign("Q", e);
    }
    Ok(prog)
}

/// Parses a type in the surface notation (`int`, `Bag(<a: int>)`,
/// `Label -> Bag(...)`, `<n: t, ...>`, `?`).
pub fn parse_type(src: &str) -> PResult<Type> {
    let mut p = Parser::new(src)?;
    let t = p.type_ann()?;
    p.expect_eof()?;
    Ok(t)
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<(Tok, Span)>,
    pos: usize,
    depth: usize,
    /// Inside a tuple literal field, `>`/`>=` close the tuple rather than
    /// acting as comparison operators. Grouping brackets reset this.
    gt_blocked: bool,
}

fn expected_expression() -> Vec<String> {
    [
        "identifier",
        "literal",
        "'('",
        "'<'",
        "'{'",
        "'get'",
        "'dedup'",
        "'groupBy'",
        "'sumBy'",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> PResult<Self> {
        Ok(Parser {
            src,
            toks: lex(src)?,
            pos: 0,
            depth: 0,
            gt_blocked: false,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].0
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].0
    }

    fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>, expected: Vec<String>) -> CompileError {
        let span = self.span();
        CompileError::new(
            message,
            span.line,
            span.col,
            expected,
            source_line(self.src, span.line),
        )
    }

    fn expect(&mut self, t: Tok) -> PResult<()> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(
                format!(
                    "expected {}, found {}",
                    t.describe(),
                    self.peek().describe()
                ),
                vec![t.describe()],
            ))
        }
    }

    fn expect_eof(&mut self) -> PResult<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err_here(
                format!("expected end of input, found {}", self.peek().describe()),
                vec!["end of input".into()],
            ))
        }
    }

    /// A binder position: reserved words are rejected with a dedicated
    /// diagnostic.
    fn binder(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(n) => {
                self.bump();
                Ok(n)
            }
            kw if kw.is_keyword() => Err(self.err_here(
                format!(
                    "reserved word '{}' cannot be used as a binder",
                    kw.keyword_spelling().unwrap_or("?")
                ),
                vec!["identifier".into()],
            )),
            other => Err(self.err_here(
                format!("expected identifier, found {}", other.describe()),
                vec!["identifier".into()],
            )),
        }
    }

    /// A field/attribute name: reserved words are acceptable here.
    fn field_name(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(n) => {
                self.bump();
                Ok(n)
            }
            kw => {
                if let Some(s) = kw.keyword_spelling() {
                    self.bump();
                    Ok(s.to_string())
                } else {
                    Err(self.err_here(
                        format!("expected field name, found {}", kw.describe()),
                        vec!["identifier".into()],
                    ))
                }
            }
        }
    }

    fn enter(&mut self) -> PResult<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err_here(
                format!("expression nesting exceeds the maximum depth of {MAX_DEPTH}"),
                Vec::new(),
            ))
        } else {
            Ok(())
        }
    }

    fn with_gt<T>(&mut self, blocked: bool, f: impl FnOnce(&mut Self) -> PResult<T>) -> PResult<T> {
        let saved = std::mem::replace(&mut self.gt_blocked, blocked);
        let r = f(self);
        self.gt_blocked = saved;
        r
    }

    fn expr(&mut self, min: u8) -> PResult<Expr> {
        self.enter()?;
        let r = self.expr_inner(min);
        self.depth -= 1;
        r
    }

    fn expr_inner(&mut self, min: u8) -> PResult<Expr> {
        if min == 0 {
            match self.peek() {
                Tok::For => return self.for_expr(),
                Tok::Let => return self.let_expr(),
                Tok::If => return self.if_expr(),
                Tok::Lambda => return self.lambda_expr(),
                Tok::Match => return self.match_expr(),
                _ => {}
            }
        }
        self.binary(min)
    }

    fn for_expr(&mut self) -> PResult<Expr> {
        self.bump();
        let var = self.binder()?;
        self.expect(Tok::In)?;
        // The source sits strictly above `union` so the keyword terminates it.
        let source = self.expr(2)?;
        self.expect(Tok::Union)?;
        let body = self.expr(0)?;
        Ok(Expr::For {
            var,
            source: Box::new(source),
            body: Box::new(body),
        })
    }

    fn let_expr(&mut self) -> PResult<Expr> {
        self.bump();
        let var = self.binder()?;
        self.expect(Tok::Assign)?;
        let value = self.expr(1)?;
        self.expect(Tok::In)?;
        let body = self.expr(0)?;
        Ok(Expr::Let {
            var,
            value: Box::new(value),
            body: Box::new(body),
        })
    }

    fn if_expr(&mut self) -> PResult<Expr> {
        self.bump();
        let cond = self.expr(1)?;
        self.expect(Tok::Then)?;
        let then_branch = self.expr(0)?;
        let else_branch = if matches!(self.peek(), Tok::Else) {
            self.bump();
            Some(Box::new(self.expr(0)?))
        } else {
            None
        };
        Ok(Expr::If {
            cond: Box::new(cond),
            then_branch: Box::new(then_branch),
            else_branch,
        })
    }

    fn lambda_expr(&mut self) -> PResult<Expr> {
        self.bump();
        let param = self.binder()?;
        self.expect(Tok::Dot)?;
        let body = self.expr(0)?;
        Ok(Expr::Lambda {
            param,
            body: Box::new(body),
        })
    }

    fn match_expr(&mut self) -> PResult<Expr> {
        self.bump();
        let label = self.expr(8)?;
        self.expect(Tok::Eq)?;
        self.expect(Tok::NewLabel)?;
        self.expect(Tok::Hash)?;
        let site = self.label_site()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                params.push(self.binder()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Then)?;
        let body = self.expr(0)?;
        Ok(Expr::MatchLabel {
            label: Box::new(label),
            site,
            params,
            body: Box::new(body),
        })
    }

    fn label_site(&mut self) -> PResult<u32> {
        match self.peek().clone() {
            Tok::Int(i) if i >= 0 && i <= u32::MAX as i64 => {
                self.bump();
                Ok(i as u32)
            }
            other => Err(self.err_here(
                format!("expected a label site number, found {}", other.describe()),
                vec!["integer literal".into()],
            )),
        }
    }

    fn binary(&mut self, min: u8) -> PResult<Expr> {
        let mut lhs = self.unary(min)?;
        while let Some((lvl, is_cmp)) = infix_level(self.peek()) {
            if lvl < min {
                break;
            }
            if self.gt_blocked && matches!(self.peek(), Tok::Gt | Tok::Ge) {
                break;
            }
            let op = self.bump();
            let rhs = if is_cmp {
                self.binary(6)?
            } else {
                self.binary(lvl + 1)?
            };
            lhs = make_binop(&op, lhs, rhs);
            if is_cmp {
                if let Some((5, true)) = infix_level(self.peek()) {
                    if !(self.gt_blocked && matches!(self.peek(), Tok::Gt | Tok::Ge)) {
                        return Err(self.err_here(
                            "comparison operators are non-associative; use parentheses",
                            Vec::new(),
                        ));
                    }
                }
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self, min: u8) -> PResult<Expr> {
        if matches!(self.peek(), Tok::Bang) && min <= 4 {
            self.bump();
            let e = self.binary(5)?;
            return Ok(Expr::Not(Box::new(e)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        while matches!(self.peek(), Tok::Dot) {
            self.bump();
            let field = self.field_name()?;
            e = Expr::Proj {
                tuple: Box::new(e),
                field,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Const(Value::Int(i)))
            }
            Tok::Real(r) => {
                self.bump();
                Ok(Expr::Const(Value::Real(r)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Const(Value::Str(s)))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Const(Value::Bool(true)))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Const(Value::Bool(false)))
            }
            Tok::Null => {
                self.bump();
                Ok(Expr::Const(Value::Null))
            }
            Tok::Date => {
                self.bump();
                self.expect(Tok::LParen)?;
                let negative = if matches!(self.peek(), Tok::Minus) {
                    self.bump();
                    true
                } else {
                    false
                };
                let d = match self.peek().clone() {
                    Tok::Int(i) => {
                        self.bump();
                        if negative {
                            -i
                        } else {
                            i
                        }
                    }
                    other => {
                        return Err(self.err_here(
                            format!("expected integer literal, found {}", other.describe()),
                            vec!["integer literal".into()],
                        ))
                    }
                };
                self.expect(Tok::RParen)?;
                Ok(Expr::Const(Value::Date(d)))
            }
            Tok::Minus => {
                self.bump();
                match self.peek().clone() {
                    Tok::Int(i) => {
                        self.bump();
                        Ok(Expr::Const(Value::Int(-i)))
                    }
                    Tok::Real(r) => {
                        self.bump();
                        Ok(Expr::Const(Value::Real(-r)))
                    }
                    other => Err(self.err_here(
                        format!(
                            "expected a numeric literal after '-', found {}",
                            other.describe()
                        ),
                        vec!["integer literal".into(), "real literal".into()],
                    )),
                }
            }
            Tok::Ident(n) => {
                self.bump();
                Ok(Expr::Var(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.with_gt(false, |p| p.expr(0))?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Lt => self.tuple_literal(),
            Tok::EmptySet => {
                self.bump();
                let ty = self.opt_type_annotation()?;
                Ok(Expr::EmptyBag(ty))
            }
            Tok::LBrace => {
                self.bump();
                if matches!(self.peek(), Tok::RBrace) {
                    self.bump();
                    let ty = self.opt_type_annotation()?;
                    Ok(Expr::EmptyBag(ty))
                } else {
                    let e = self.with_gt(false, |p| p.expr(0))?;
                    self.expect(Tok::RBrace)?;
                    Ok(Expr::Singleton(Box::new(e)))
                }
            }
            Tok::Get => Ok(Expr::Get(Box::new(self.call1()?))),
            Tok::Dedup => Ok(Expr::Dedup(Box::new(self.call1()?))),
            Tok::BagToDict => Ok(Expr::BagToDict(Box::new(self.call1()?))),
            Tok::GroupBy => self.group_by(),
            Tok::SumBy => self.sum_by(),
            Tok::NewLabel => self.new_label(),
            Tok::Lookup => {
                let (dict, label) = self.call2()?;
                Ok(Expr::Lookup {
                    dict: Box::new(dict),
                    label: Box::new(label),
                })
            }
            Tok::MatLookup => {
                let (dict, label) = self.call2()?;
                Ok(Expr::MatLookup {
                    dict: Box::new(dict),
                    label: Box::new(label),
                })
            }
            kw @ (Tok::For | Tok::Let | Tok::If | Tok::Lambda | Tok::Match) => Err(self.err_here(
                format!(
                    "'{}' expression must be parenthesised in operand position",
                    kw.keyword_spelling().unwrap_or("?")
                ),
                vec!["'('".into()],
            )),
            other => Err(self.err_here(
                format!("expected an expression, found {}", other.describe()),
                expected_expression(),
            )),
        }
    }

    fn tuple_literal(&mut self) -> PResult<Expr> {
        self.bump(); // '<'
        let mut fields = Vec::new();
        if !matches!(self.peek(), Tok::Gt) {
            loop {
                let name = self.field_name()?;
                self.expect(Tok::Assign)?;
                let value = self.with_gt(true, |p| p.expr(0))?;
                fields.push((name, value));
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                    if matches!(self.peek(), Tok::Gt) {
                        break; // trailing comma
                    }
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::Gt)?;
        Ok(Expr::Tuple(fields))
    }

    fn call1(&mut self) -> PResult<Expr> {
        self.bump(); // keyword
        self.expect(Tok::LParen)?;
        let e = self.with_gt(false, |p| p.expr(0))?;
        self.expect(Tok::RParen)?;
        Ok(e)
    }

    fn call2(&mut self) -> PResult<(Expr, Expr)> {
        self.bump(); // keyword
        self.expect(Tok::LParen)?;
        let a = self.with_gt(false, |p| p.expr(0))?;
        self.expect(Tok::Comma)?;
        let b = self.with_gt(false, |p| p.expr(0))?;
        self.expect(Tok::RParen)?;
        Ok((a, b))
    }

    fn name_list(&mut self, terminators: &[Tok]) -> PResult<Vec<String>> {
        let mut out = Vec::new();
        if terminators.contains(self.peek()) {
            return Ok(out);
        }
        loop {
            out.push(self.field_name()?);
            if matches!(self.peek(), Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn group_by(&mut self) -> PResult<Expr> {
        self.bump();
        self.expect(Tok::LBracket)?;
        let key = self.name_list(&[Tok::Semi])?;
        self.expect(Tok::Semi)?;
        let marker = self.field_name()?;
        if marker != "group" {
            return Err(self.err_here(
                format!("expected 'group=' in groupBy, found '{marker}'"),
                vec!["'group'".into()],
            ));
        }
        self.expect(Tok::Eq)?;
        let group_attr = self.field_name()?;
        self.expect(Tok::RBracket)?;
        self.expect(Tok::LParen)?;
        let input = self.with_gt(false, |p| p.expr(0))?;
        self.expect(Tok::RParen)?;
        Ok(Expr::GroupBy {
            input: Box::new(input),
            key,
            group_attr,
        })
    }

    fn sum_by(&mut self) -> PResult<Expr> {
        self.bump();
        self.expect(Tok::LBracket)?;
        let key = self.name_list(&[Tok::Semi])?;
        self.expect(Tok::Semi)?;
        let values = self.name_list(&[Tok::RBracket])?;
        self.expect(Tok::RBracket)?;
        self.expect(Tok::LParen)?;
        let input = self.with_gt(false, |p| p.expr(0))?;
        self.expect(Tok::RParen)?;
        Ok(Expr::SumBy {
            input: Box::new(input),
            key,
            values,
        })
    }

    fn new_label(&mut self) -> PResult<Expr> {
        self.bump();
        self.expect(Tok::Hash)?;
        let site = self.label_site()?;
        self.expect(Tok::LParen)?;
        let mut captures = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                let name = self.field_name()?;
                self.expect(Tok::Assign)?;
                let value = self.with_gt(false, |p| p.expr(0))?;
                captures.push((name, value));
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(Expr::NewLabel { site, captures })
    }

    fn opt_type_annotation(&mut self) -> PResult<Option<Type>> {
        if matches!(self.peek(), Tok::Colon) {
            self.bump();
            Ok(Some(self.type_ann()?))
        } else {
            Ok(None)
        }
    }

    fn type_ann(&mut self) -> PResult<Type> {
        self.enter()?;
        let r = self.type_ann_inner();
        self.depth -= 1;
        r
    }

    fn type_ann_inner(&mut self) -> PResult<Type> {
        match self.peek().clone() {
            Tok::Ident(w) => match w.as_str() {
                "int" => {
                    self.bump();
                    Ok(Type::int())
                }
                "real" => {
                    self.bump();
                    Ok(Type::real())
                }
                "string" => {
                    self.bump();
                    Ok(Type::string())
                }
                "bool" => {
                    self.bump();
                    Ok(Type::boolean())
                }
                "Bag" => {
                    self.bump();
                    self.expect(Tok::LParen)?;
                    let t = self.type_ann()?;
                    self.expect(Tok::RParen)?;
                    Ok(Type::bag(t))
                }
                "Label" => {
                    self.bump();
                    if matches!(self.peek(), Tok::Arrow) {
                        self.bump();
                        match self.peek().clone() {
                            Tok::Ident(b) if b == "Bag" => {
                                self.bump();
                            }
                            other => {
                                return Err(self.err_here(
                                    format!(
                                        "expected 'Bag' after '->', found {}",
                                        other.describe()
                                    ),
                                    vec!["'Bag'".into()],
                                ))
                            }
                        }
                        self.expect(Tok::LParen)?;
                        let t = self.type_ann()?;
                        self.expect(Tok::RParen)?;
                        Ok(Type::dict(t))
                    } else {
                        Ok(Type::Label)
                    }
                }
                _ => Err(self.err_here(
                    format!("unknown type name '{w}'"),
                    vec![
                        "'int'".into(),
                        "'real'".into(),
                        "'string'".into(),
                        "'bool'".into(),
                        "'date'".into(),
                        "'Bag'".into(),
                        "'Label'".into(),
                    ],
                )),
            },
            Tok::Date => {
                self.bump();
                Ok(Type::date())
            }
            Tok::Question => {
                self.bump();
                Ok(Type::Unknown)
            }
            Tok::Lt => {
                self.bump();
                let mut fields = Vec::new();
                if !matches!(self.peek(), Tok::Gt) {
                    loop {
                        let name = self.field_name()?;
                        self.expect(Tok::Colon)?;
                        let t = self.type_ann()?;
                        fields.push((name, t));
                        if matches!(self.peek(), Tok::Comma) {
                            self.bump();
                            if matches!(self.peek(), Tok::Gt) {
                                break;
                            }
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::Gt)?;
                Ok(Type::Tuple(TupleType { fields }))
            }
            other => Err(self.err_here(
                format!("expected a type, found {}", other.describe()),
                vec![
                    "'int'".into(),
                    "'real'".into(),
                    "'string'".into(),
                    "'bool'".into(),
                    "'date'".into(),
                    "'Bag'".into(),
                    "'Label'".into(),
                    "'<'".into(),
                    "'?'".into(),
                ],
            )),
        }
    }
}

/// Infix operator level plus whether it is a (non-associative) comparison.
fn infix_level(t: &Tok) -> Option<(u8, bool)> {
    Some(match t {
        Tok::Union | Tok::DictTreeUnion => (1, false),
        Tok::OrOr => (2, false),
        Tok::AndAnd => (3, false),
        Tok::EqEq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge => (5, true),
        Tok::Plus | Tok::Minus => (6, false),
        Tok::Star | Tok::Slash => (7, false),
        _ => return None,
    })
}

fn make_binop(op: &Tok, l: Expr, r: Expr) -> Expr {
    let (l, r) = (Box::new(l), Box::new(r));
    match op {
        Tok::Union => Expr::Union(l, r),
        Tok::DictTreeUnion => Expr::DictTreeUnion(l, r),
        Tok::OrOr => Expr::Or(l, r),
        Tok::AndAnd => Expr::And(l, r),
        Tok::EqEq => Expr::Cmp {
            op: CmpOp::Eq,
            left: l,
            right: r,
        },
        Tok::Ne => Expr::Cmp {
            op: CmpOp::Ne,
            left: l,
            right: r,
        },
        Tok::Lt => Expr::Cmp {
            op: CmpOp::Lt,
            left: l,
            right: r,
        },
        Tok::Le => Expr::Cmp {
            op: CmpOp::Le,
            left: l,
            right: r,
        },
        Tok::Gt => Expr::Cmp {
            op: CmpOp::Gt,
            left: l,
            right: r,
        },
        Tok::Ge => Expr::Cmp {
            op: CmpOp::Ge,
            left: l,
            right: r,
        },
        Tok::Plus => Expr::Prim {
            op: PrimOp::Add,
            left: l,
            right: r,
        },
        Tok::Minus => Expr::Prim {
            op: PrimOp::Sub,
            left: l,
            right: r,
        },
        Tok::Star => Expr::Prim {
            op: PrimOp::Mul,
            left: l,
            right: r,
        },
        Tok::Slash => Expr::Prim {
            op: PrimOp::Div,
            left: l,
            right: r,
        },
        _ => unreachable!("not an infix operator: {op:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trance_nrc::builder::*;

    #[test]
    fn parses_comprehensions_and_operators() {
        let e =
            parse_expr("for x in R union if x.a == 2 && x.b < 3 then { <u := x.a + 1, v := x.s> }")
                .unwrap();
        let want = forin(
            "x",
            var("R"),
            ifthen(
                and(
                    cmp_eq(proj(var("x"), "a"), int(2)),
                    cmp_lt(proj(var("x"), "b"), int(3)),
                ),
                singleton(tuple([
                    ("u", add(proj(var("x"), "a"), int(1))),
                    ("v", proj(var("x"), "s")),
                ])),
            ),
        );
        assert_eq!(e, want);
    }

    #[test]
    fn gt_closes_tuples_but_parens_restore_comparison() {
        let e = parse_expr("<u := x.a>").unwrap();
        assert_eq!(e, tuple([("u", proj(var("x"), "a"))]));
        let e = parse_expr("<u := (x.a > 1)>").unwrap();
        assert_eq!(e, tuple([("u", cmp_gt(proj(var("x"), "a"), int(1)))]));
    }

    #[test]
    fn unicode_alternates_are_accepted() {
        let a = parse_expr("⟨a := 1⟩").unwrap();
        assert_eq!(a, tuple([("a", int(1))]));
        let b = parse_expr("R ⊎ S").unwrap();
        assert_eq!(b, union(var("R"), var("S")));
        let c = parse_expr("∅: Bag(int)").unwrap();
        assert_eq!(c, empty_bag_of(Type::bag(Type::int())));
        let d = parse_expr("{}: int").unwrap();
        assert_eq!(d, empty_bag_of(Type::int()));
    }

    #[test]
    fn precedence_matches_the_documented_table() {
        let e = parse_expr("a.x + b.y * 2 == c.z || !p && q").unwrap();
        let want = or(
            cmp_eq(
                add(proj(var("a"), "x"), mul(proj(var("b"), "y"), int(2))),
                proj(var("c"), "z"),
            ),
            and(not(var("p")), var("q")),
        );
        assert_eq!(e, want);
    }

    #[test]
    fn programs_parse_as_assignment_sequences() {
        let p = parse_program("A <= R\nB <= dedup(A)").unwrap();
        assert_eq!(p.assigned_names(), vec!["A", "B"]);
        assert_eq!(p.assignments[1].expr, dedup(var("A")));
    }

    #[test]
    fn types_round_trip_through_display() {
        for t in [
            Type::int(),
            Type::bag_of([("a", Type::int()), ("s", Type::string())]),
            Type::bag(Type::tuple([(
                "items",
                Type::bag_of([("ik", Type::int())]),
            )])),
            Type::dict(Type::tuple([("a", Type::date())])),
            Type::Label,
            Type::Unknown,
        ] {
            let printed = t.to_string();
            let parsed = parse_type(&printed).unwrap();
            assert_eq!(parsed, t, "type `{printed}` must round-trip");
        }
    }

    #[test]
    fn dangling_else_binds_to_the_innermost_if() {
        let e = parse_expr("if a then if b then 1 else 2").unwrap();
        let want = ifthen(var("a"), ifelse(var("b"), int(1), int(2)));
        assert_eq!(e, want);
    }

    #[test]
    fn deep_nesting_is_an_error_not_an_overflow() {
        let src = format!("{}1{}", "(".repeat(5000), ")".repeat(5000));
        let err = parse_expr(&src).unwrap_err();
        assert!(err.message.contains("nesting exceeds"));
    }
}
