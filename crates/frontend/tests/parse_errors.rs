//! Golden diagnostics: every malformed program yields a **spanned**
//! [`CompileError`] — never a panic, never a stack overflow — with a stable
//! message, 1-based position, and expected-token set. These are golden
//! tests: a change to any of these diagnostics is an intentional
//! user-facing change and must update this file.

use trance_frontend::{parse_program, CompileError, MAX_DEPTH};

fn err(src: &str) -> CompileError {
    match parse_program(src) {
        Err(e) => e,
        Ok(p) => panic!("expected a diagnostic for {src:?}, parsed {p:?}"),
    }
}

/// Asserts the exact message, position and expected set of a diagnostic.
fn golden(src: &str, message: &str, line: usize, col: usize, expected: &[&str]) {
    let e = err(src);
    assert_eq!(e.message, message, "message for {src:?}");
    assert_eq!((e.line, e.col), (line, col), "position for {src:?}");
    assert_eq!(e.expected, expected, "expected set for {src:?}");
}

const EXPR_START: &[&str] = &[
    "identifier",
    "literal",
    "'('",
    "'<'",
    "'{'",
    "'get'",
    "'dedup'",
    "'groupBy'",
    "'sumBy'",
];

#[test]
fn lexer_diagnostics() {
    golden("{ \"abc }", "unterminated string literal", 1, 3, &[]);
    golden(
        "\"a\\q\"",
        "invalid escape `\\q` in string literal",
        1,
        4,
        &[],
    );
    golden(
        "a & b",
        "unexpected character `&` (did you mean `&&`?)",
        1,
        3,
        &[],
    );
    golden(
        "a | b",
        "unexpected character `|` (did you mean `||`?)",
        1,
        3,
        &[],
    );
    golden("a $ b", "unexpected character `$`", 1, 3, &[]);
}

#[test]
fn binder_and_field_diagnostics() {
    golden(
        "for let in R union { 1 }",
        "reserved word 'let' cannot be used as a binder",
        1,
        5,
        &["identifier"],
    );
    golden(
        "<1 := 2>",
        "expected field name, found integer literal",
        1,
        2,
        &["identifier"],
    );
    golden(
        "x.",
        "expected field name, found end of input",
        1,
        3,
        &["identifier"],
    );
    golden("<a = 1>", "expected ':=', found '='", 1, 4, &["':='"]);
}

#[test]
fn arity_and_call_diagnostics() {
    golden("Lookup(d)", "expected ',', found ')'", 1, 9, &["','"]);
    golden("groupBy[a](R)", "expected ';', found ']'", 1, 10, &["';'"]);
    golden("dedup(a, b)", "expected ')', found ','", 1, 8, &["')'"]);
}

#[test]
fn structure_diagnostics() {
    golden(
        "",
        "expected an expression, found end of input",
        1,
        1,
        EXPR_START,
    );
    golden(
        "for x in R union",
        "expected an expression, found end of input",
        1,
        17,
        EXPR_START,
    );
    golden(
        "let x := in 1",
        "expected an expression, found 'in'",
        1,
        10,
        EXPR_START,
    );
    golden(
        "if a b",
        "expected 'then', found identifier",
        1,
        6,
        &["'then'"],
    );
    golden("(1 + 2", "expected ')', found end of input", 1, 7, &["')'"]);
    golden(
        "1 2",
        "expected end of input, found integer literal",
        1,
        3,
        &["end of input"],
    );
}

#[test]
fn precedence_diagnostics() {
    golden(
        "1 < 2 < 3",
        "comparison operators are non-associative; use parentheses",
        1,
        7,
        &[],
    );
    golden(
        "1 + for x in R union { x }",
        "'for' expression must be parenthesised in operand position",
        1,
        5,
        &["'('"],
    );
}

#[test]
fn diagnostics_point_into_later_lines() {
    let e = err("A <= 1\nB <=\n  if x then else 2");
    assert_eq!(e.message, "expected an expression, found 'else'");
    assert_eq!((e.line, e.col), (3, 13));
    let rendered = e.to_string();
    assert!(
        rendered.contains("3 |   if x then else 2"),
        "rendered diagnostic must excerpt the offending line:\n{rendered}"
    );
    assert!(
        rendered.contains("at 3:13"),
        "rendered diagnostic must carry the position:\n{rendered}"
    );
}

#[test]
fn deep_nesting_is_a_spanned_error_not_a_stack_overflow() {
    // 5000 levels would overflow a 2 MiB test-thread stack if recursion ran
    // unchecked; the depth guard must fire with a plain diagnostic instead.
    let src = format!("{}1{}", "(".repeat(5000), ")".repeat(5000));
    let e = err(&src);
    assert_eq!(
        e.message,
        format!("expression nesting exceeds the maximum depth of {MAX_DEPTH}")
    );
    assert_eq!(e.line, 1);
    assert_eq!(
        e.col,
        MAX_DEPTH + 1,
        "the guard fires at the paren past the limit"
    );
}

#[test]
fn malformed_inputs_never_panic() {
    // A scattershot of junk: the only contract here is Err, not panic.
    for src in [
        "(((((",
        ">>>",
        "<<",
        "for for for",
        "\u{0}",
        "λλλ",
        "1e+",
        "a.b.c.(",
        "match x = then 1",
        "#site(a := )",
        "{}: Bag(",
        "let let := 1 in 2",
    ] {
        assert!(parse_program(src).is_err(), "{src:?} must be an error");
    }
}
