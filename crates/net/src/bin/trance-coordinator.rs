//! `trance-coordinator` — control plane of a multi-node trance cluster.
//!
//! Usage:
//! `trance-coordinator [--listen ADDR] [--workers N] [--partitions P]
//!  [--threads T] [--smoke] [--chaos] [--seed S]`
//!
//! Binds the control listener (printing the bound address so scripts can
//! start workers against an ephemeral port), waits for `--workers`
//! registrations, and — with `--smoke` — runs the differential smoke suite:
//! the paper's running example across every nested-result strategy, each
//! cell checked bag-identical (and logical-shuffle-byte-identical) to the
//! in-process oracle. `--chaos` appends a seeded connection-drop cell that
//! must recover to the oracle result through the global retry.

use std::process::ExitCode;

use trance_net::msg::{ClusterParams, DropSpec};
use trance_net::{run_smoke, CoordinatorListener};

struct Opts {
    listen: String,
    workers: usize,
    partitions: u32,
    threads: u32,
    smoke: bool,
    chaos: bool,
    seed: u64,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        listen: "127.0.0.1:0".to_string(),
        workers: 3,
        partitions: 8,
        threads: 2,
        smoke: false,
        chaos: false,
        seed: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
            }
            "--partitions" => {
                opts.partitions = value("--partitions")?
                    .parse()
                    .map_err(|e| format!("bad --partitions: {e}"))?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--smoke" => opts.smoke = true,
            "--chaos" => opts.chaos = true,
            "--help" | "-h" => {
                println!(
                    "usage: trance-coordinator [--listen ADDR] [--workers N] \
                     [--partitions P] [--threads T] [--smoke] [--chaos] [--seed S]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("trance-coordinator: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = ClusterParams {
        partitions: opts.partitions,
        threads: opts.threads,
        broadcast_limit: 8 * 1024 * 1024,
    };
    let listener = match CoordinatorListener::bind(&opts.listen, params) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("trance-coordinator: binding {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("trance-coordinator listening on {addr}"),
        Err(e) => {
            eprintln!("trance-coordinator: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("waiting for {} workers", opts.workers);
    let mut coordinator = match listener.accept_workers(opts.workers) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trance-coordinator: accepting workers: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("cluster formed: {} ranks", coordinator.ranks());

    let code = if opts.smoke {
        // Seed-derived chaos cell: which rank drops, and after how many
        // data frames, both follow from the echoed seed so a CI failure is
        // reproducible.
        let chaos = opts.chaos.then(|| DropSpec {
            victim: (opts.seed % opts.workers as u64) as u32,
            after_frames: 2 + opts.seed % 5,
        });
        println!("smoke seed: {}", opts.seed);
        if let Some(d) = chaos {
            println!(
                "chaos: rank {} drops its link after {} frames",
                d.victim, d.after_frames
            );
        }
        match run_smoke(&mut coordinator, params, chaos) {
            Ok(outcomes) => {
                for cell in &outcomes {
                    println!(
                        "ok {}: {} rows, {} attempt(s), {} shuffle bytes, {} ms",
                        cell.label, cell.rows, cell.attempts, cell.shuffled_bytes, cell.wall_ms
                    );
                }
                println!(
                    "smoke passed: {} cells agree with the oracle",
                    outcomes.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("trance-coordinator: smoke failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        ExitCode::SUCCESS
    };
    coordinator.shutdown();
    code
}
