//! `trance-worker` — one rank of a multi-node trance cluster.
//!
//! Usage: `trance-worker --connect HOST:PORT`
//!
//! Connects to the coordinator's control address, registers its data-plane
//! listener, then serves load/run/cancel commands until `Shutdown`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut connect: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = args.next(),
            "--help" | "-h" => {
                println!("usage: trance-worker --connect HOST:PORT");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("trance-worker: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = connect else {
        eprintln!("trance-worker: missing --connect HOST:PORT");
        return ExitCode::FAILURE;
    };
    match trance_net::worker::serve(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trance-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
