//! The coordinator: owns the catalog, partitions it across worker
//! processes, drives jobs attempt by attempt, and merges per-rank results
//! back into one bag.
//!
//! Recovery model: any rank reporting a [`ErrKind::Retryable`] outcome
//! (connection loss, injected fault the worker's own retry/lineage layers
//! could not absorb) aborts the attempt, and the whole job reruns on a
//! fresh mesh epoch — SPMD plans are deterministic, so a rerun is
//! bag-identical. Cancellation and deterministic failures are never
//! retried.

use std::io;
use std::net::{TcpListener, ToSocketAddrs};

use trance_dist::exchange::{owned_range, split_rows_round_robin};
use trance_dist::ExecError;
use trance_dist::FaultSite;
use trance_nrc::pretty::pretty;
use trance_nrc::{Bag, Expr, Value};
use trance_shred::{flat_input_name, input_dict_name, shred_value, NestingStructure};

use trance_compiler::Strategy;

use crate::link::FramedConn;
use crate::msg::{ClusterParams, Ctrl, DropSpec, ErrKind, LoadKind, NetStats, Outcome};

/// Whole-job attempts before the coordinator gives up on transient
/// failures.
pub const MAX_JOB_ATTEMPTS: u32 = 4;

/// One distributed job: a query over previously loaded inputs.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The NRC query.
    pub query: Expr,
    /// Nested-input declarations (name, nesting structure).
    pub decls: Vec<(String, NestingStructure)>,
    /// Execution strategy (must produce a nested result).
    pub strategy: Strategy,
    /// Cooperative deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// Chaos drop injected on attempt 0, if any.
    pub chaos: Option<DropSpec>,
}

impl JobSpec {
    /// A plain job: no deadline, no chaos.
    pub fn new(query: Expr, decls: Vec<(String, NestingStructure)>, strategy: Strategy) -> JobSpec {
        JobSpec {
            query,
            decls,
            strategy,
            deadline_ms: None,
            chaos: None,
        }
    }
}

/// A finished job: merged rows, summed per-rank counters, attempts used.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Result rows merged in rank order (= partition order, so exactly the
    /// single-process collection order).
    pub rows: Bag,
    /// Per-rank counters summed across the successful attempt.
    pub stats: NetStats,
    /// Attempts consumed (1 = clean first run).
    pub attempts: u32,
}

/// A bound coordinator listener, waiting for workers to register.
#[derive(Debug)]
pub struct CoordinatorListener {
    listener: TcpListener,
    params: ClusterParams,
}

impl CoordinatorListener {
    /// Binds the control listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        params: ClusterParams,
    ) -> io::Result<CoordinatorListener> {
        Ok(CoordinatorListener {
            listener: TcpListener::bind(addr)?,
            params,
        })
    }

    /// The bound control address (workers connect here).
    pub fn local_addr(&self) -> io::Result<String> {
        Ok(self.listener.local_addr()?.to_string())
    }

    /// Accepts `count` workers: collects every `Hello`, assigns ranks in
    /// connection order, then broadcasts the peer table so data planes can
    /// mesh.
    pub fn accept_workers(self, count: usize) -> io::Result<Coordinator> {
        let mut workers = Vec::with_capacity(count);
        let mut data_addrs = Vec::with_capacity(count);
        for _ in 0..count {
            let (stream, _) = self.listener.accept()?;
            let conn = FramedConn::new(stream)?;
            match conn.recv()? {
                Some(Ctrl::Hello { data_addr }) => {
                    data_addrs.push(data_addr);
                    workers.push(conn);
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected Hello from worker, got {other:?}"),
                    ));
                }
            }
        }
        for (rank, conn) in workers.iter().enumerate() {
            conn.send(&Ctrl::Peers {
                rank: rank as u32,
                data_addrs: data_addrs.clone(),
                params: self.params,
            })?;
        }
        Ok(Coordinator {
            workers,
            partitions: self.params.partitions as usize,
            epoch: 0,
            next_job: 0,
        })
    }
}

/// A connected cluster: one control link per worker, ready to load inputs
/// and run jobs.
#[derive(Debug)]
pub struct Coordinator {
    workers: Vec<FramedConn>,
    partitions: usize,
    epoch: u64,
    next_job: u64,
}

impl Coordinator {
    /// Number of worker processes.
    pub fn ranks(&self) -> usize {
        self.workers.len()
    }

    /// Round-robin partitions `rows` and ships each rank the full-length
    /// partition vector with only its owned contiguous slots populated —
    /// exactly the layout the in-process engine builds, so plans and
    /// shuffles agree byte for byte.
    fn ship(&self, kind: LoadKind, name: &str, rows: Vec<Value>) -> io::Result<()> {
        let parts = split_rows_round_robin(rows, self.partitions);
        let ranks = self.workers.len();
        for (rank, conn) in self.workers.iter().enumerate() {
            let mut owned: Vec<Vec<Value>> = vec![Vec::new(); self.partitions];
            for slot in owned_range(rank, self.partitions, ranks) {
                owned[slot] = parts[slot].clone();
            }
            conn.send(&Ctrl::Load {
                kind,
                name: name.to_string(),
                parts: owned,
            })?;
        }
        Ok(())
    }

    /// Loads a flat relation into every rank (both routes).
    pub fn load_flat(&self, name: &str, rows: Vec<Value>) -> io::Result<()> {
        self.ship(LoadKind::Flat, name, rows)
    }

    /// Loads a nested relation: the nested form for the standard routes and
    /// the shredded form (top bag + dictionaries) for the shredded routes.
    pub fn load_nested(&self, name: &str, rows: Bag) -> io::Result<()> {
        let shredded =
            shred_value(&rows).map_err(|e| io::Error::other(format!("shredding {name}: {e}")))?;
        self.ship(LoadKind::Nested, name, rows.into_items())?;
        self.ship(
            LoadKind::Shredded,
            &flat_input_name(name),
            shredded.top.into_items(),
        )?;
        for (path, bag) in shredded.dicts {
            self.ship(
                LoadKind::Shredded,
                &input_dict_name(name, &path),
                bag.into_items(),
            )?;
        }
        Ok(())
    }

    /// Runs one job to completion, retrying transient failures on fresh
    /// mesh epochs up to [`MAX_JOB_ATTEMPTS`].
    pub fn run(&mut self, spec: &JobSpec) -> Result<JobReport, ExecError> {
        let job = self.next_job;
        self.next_job += 1;
        let query_text = pretty(&spec.query);
        let mut last_detail = String::new();

        for attempt in 0..MAX_JOB_ATTEMPTS {
            self.epoch += 1;
            let msg = Ctrl::Run {
                epoch: self.epoch,
                job,
                attempt,
                strategy: spec.strategy.label().to_string(),
                query: query_text.clone(),
                decls: spec.decls.clone(),
                deadline_ms: spec.deadline_ms,
                drop: spec.chaos.filter(|_| attempt == 0),
            };
            for conn in &self.workers {
                conn.send(&msg)
                    .map_err(|e| ExecError::Other(format!("worker control link failed: {e}")))?;
            }

            match self.collect_attempt(job, attempt)? {
                AttemptResult::Done(mut rows_per_rank, stats) => {
                    let mut rows = Vec::new();
                    for rank_rows in &mut rows_per_rank {
                        rows.append(rank_rows);
                    }
                    return Ok(JobReport {
                        rows: Bag::new(rows),
                        stats,
                        attempts: attempt + 1,
                    });
                }
                AttemptResult::Failed { kind, detail } => match kind {
                    ErrKind::Cancelled => {
                        return Err(ExecError::Cancelled { reason: detail });
                    }
                    ErrKind::Fatal => {
                        return Err(ExecError::Other(detail));
                    }
                    ErrKind::Retryable => {
                        eprintln!(
                            "trance-coordinator: job {job} attempt {attempt} failed \
                             ({detail}); retrying on a fresh mesh"
                        );
                        last_detail = detail;
                    }
                },
            }
        }
        Err(ExecError::Retryable {
            site: FaultSite::Shuffle,
            detail: format!("job {job} failed after {MAX_JOB_ATTEMPTS} attempts: {last_detail}"),
        })
    }

    /// Waits for every rank's `Result` for `(job, attempt)`, accumulating
    /// its `Rows` chunks. Stale frames from older attempts are discarded.
    fn collect_attempt(&self, job: u64, attempt: u32) -> Result<AttemptResult, ExecError> {
        let mut rows_per_rank: Vec<Vec<Value>> = vec![Vec::new(); self.workers.len()];
        let mut stats = NetStats::default();
        let mut failure: Option<(ErrKind, String)> = None;
        for (rank, conn) in self.workers.iter().enumerate() {
            loop {
                let msg = conn.recv().map_err(|e| {
                    ExecError::Other(format!("worker {rank} control link failed: {e}"))
                })?;
                match msg {
                    Some(Ctrl::Rows {
                        job: j,
                        attempt: a,
                        mut rows,
                    }) if j == job && a == attempt => {
                        rows_per_rank[rank].append(&mut rows);
                    }
                    Some(Ctrl::Result {
                        job: j,
                        attempt: a,
                        outcome,
                    }) if j == job && a == attempt => {
                        match outcome {
                            Outcome::Ok(s) => stats.absorb(&s),
                            Outcome::Err { kind, detail } => {
                                // Keep the most decisive failure: Cancelled
                                // and Fatal outrank Retryable.
                                let decisive = !matches!(kind, ErrKind::Retryable);
                                if failure.is_none()
                                    || (decisive
                                        && matches!(failure, Some((ErrKind::Retryable, _))))
                                {
                                    failure = Some((kind, format!("rank {rank}: {detail}")));
                                }
                            }
                        }
                        break;
                    }
                    // Stale chunk or result from an aborted attempt.
                    Some(Ctrl::Rows { .. }) | Some(Ctrl::Result { .. }) => {}
                    Some(other) => {
                        return Err(ExecError::Other(format!(
                            "unexpected control message from rank {rank}: {other:?}"
                        )));
                    }
                    None => {
                        return Err(ExecError::Other(format!(
                            "worker {rank} control connection closed mid-job"
                        )));
                    }
                }
            }
        }
        Ok(match failure {
            None => AttemptResult::Done(rows_per_rank, stats),
            Some((kind, detail)) => AttemptResult::Failed { kind, detail },
        })
    }

    /// Asks every worker to exit its serve loop.
    pub fn shutdown(&mut self) {
        for conn in &self.workers {
            let _ = conn.send(&Ctrl::Shutdown);
        }
    }
}

enum AttemptResult {
    Done(Vec<Vec<Value>>, NetStats),
    Failed { kind: ErrKind, detail: String },
}
