//! The TCP data plane: a full mesh of worker⇄worker links implementing the
//! engine's [`Exchange`] collectives over sockets.
//!
//! Topology: every worker binds one persistent data listener at startup
//! ([`DataPlane::bind`]); for each run attempt the coordinator broadcasts a
//! fresh **mesh epoch**, and rank `a` dials rank `b` iff `a < b`, opening
//! exactly one connection per worker pair. The dialing side leads with a
//! [`FRAME_HELLO`] carrying the epoch and its rank, so a late connection
//! from an aborted attempt can never join the wrong mesh.
//!
//! Per link, per direction, the transport is length-prefixed
//! [`trance_store::wire`] frames under **credit-based backpressure**: a
//! sender starts with [`CREDIT_WINDOW`] credits, every data frame consumes
//! one, and the receiver's reader thread grants one back per frame it
//! ingests — bounding the frames in flight on any link. Senders blocked on
//! credit (and collectives blocked on stragglers) wake every 100 ms to check
//! for cancellation and link failure, so cancellation propagates even
//! mid-collective.
//!
//! Failure semantics: a reader hitting EOF or an I/O error marks **its
//! link** broken. Brokenness is deliberately per-link, not mesh-global: a
//! rank that finishes the job closes its mesh, and the resulting EOF is
//! benign — its frames for every round were already delivered in order, and
//! nothing is ever sent *to* a finished rank again (a rank can only finish
//! once every peer's final contributions are in). So a send fails only when
//! the *target* link is broken, and a collective wait fails only when a
//! broken-link peer's contribution to *that round* is still missing — in
//! which case it returns a typed [`ExecError::Retryable`] (shuffle site),
//! the same error class the engine's retry and lineage-recovery layers
//! already handle and the signal the coordinator's global retry acts on.
//! Out-of-order deliveries are fine by construction: shuffle payloads carry
//! their source tags, and the engine's reorder-buffer sinks restore the
//! single-process merge order.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use trance_dist::{CancelToken, Exchange, ExecError, FaultSite};
use trance_store::wire;
use trance_store::{ByteReader, ByteWriter};

use crate::msg::{FRAME_CREDIT, FRAME_DATA, FRAME_HELLO, MAX_NET_FRAME};

/// Data frames a sender may have in flight on one link before it blocks
/// waiting for the receiver to grant credit back.
pub const CREDIT_WINDOW: u32 = 32;

/// How often blocked senders/collectives wake to check cancellation and
/// link failure.
const WAIT_TICK: Duration = Duration::from_millis(100);

/// How long mesh formation retries dialing a peer's listener.
const DIAL_TIMEOUT: Duration = Duration::from_secs(10);

/// How long mesh formation waits for an expected inbound link.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(30);

const OP_SHUFFLE: u8 = 1;
const OP_GATHER: u8 = 2;
const OP_SHUFFLE_DONE: u8 = 3;

fn net_err(detail: impl Into<String>) -> ExecError {
    ExecError::Retryable {
        site: FaultSite::Shuffle,
        detail: detail.into(),
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One collective in flight: what this rank has received so far.
#[derive(Debug)]
struct Round {
    shuffle: Vec<Vec<u8>>,
    done: Vec<bool>,
    gathers: Vec<Option<Vec<u8>>>,
    desync: Option<String>,
}

impl Round {
    fn new(ranks: usize) -> Round {
        Round {
            shuffle: Vec::new(),
            done: vec![false; ranks],
            gathers: vec![None; ranks],
            desync: None,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    rounds: HashMap<u64, Round>,
}

#[derive(Debug)]
struct Shared {
    ranks: usize,
    inner: Mutex<Inner>,
    cond: Condvar,
}

/// One direction-agnostic TCP link to a peer rank.
#[derive(Debug)]
struct Link {
    peer: usize,
    /// The original stream handle, kept for `shutdown` (teardown + chaos).
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    credits: Mutex<u32>,
    credit_cond: Condvar,
    /// Set once this link's reader hits EOF or an I/O error. Per-link, not
    /// mesh-global: see the module docs for why a finished peer's close must
    /// not fail traffic between the remaining ranks.
    broken: Mutex<Option<String>>,
}

impl Link {
    fn send_credit(&self, n: u32) {
        let mut w = lock(&self.writer);
        // A failed grant is not an error here: the write path will surface
        // the broken link the next time anyone sends on it.
        let _ = wire::write_frame(&mut *w, FRAME_CREDIT, &n.to_le_bytes()).and_then(|_| w.flush());
    }

    fn broken_detail(&self) -> Option<String> {
        lock(&self.broken).clone()
    }

    /// Records the first failure on this link and wakes both the credit
    /// waiters and the collective waiters so they re-evaluate.
    fn mark_broken(&self, shared: &Shared, detail: String) {
        {
            let mut slot = lock(&self.broken);
            if slot.is_none() {
                *slot = Some(detail);
            }
        }
        self.credit_cond.notify_all();
        shared.cond.notify_all();
    }
}

/// A connected TCP [`Exchange`] mesh for one run attempt.
#[derive(Debug)]
pub struct NetExchange {
    rank: usize,
    shared: Arc<Shared>,
    links: Vec<Option<Arc<Link>>>,
    seq: AtomicU64,
    cancel: Mutex<Option<CancelToken>>,
    /// Data frames sent across all links (chaos trigger counter).
    sent_frames: AtomicU64,
    /// Sever a link after this many sent frames (`u64::MAX` = never).
    drop_after: AtomicU64,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl NetExchange {
    fn new(rank: usize, streams: Vec<Option<TcpStream>>) -> io::Result<NetExchange> {
        let ranks = streams.len();
        let shared = Arc::new(Shared {
            ranks,
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
        });
        let mut links: Vec<Option<Arc<Link>>> = Vec::with_capacity(ranks);
        let mut readers = Vec::new();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else {
                links.push(None);
                continue;
            };
            stream.set_nodelay(true).ok();
            let read_half = stream.try_clone()?;
            let write_half = stream.try_clone()?;
            let link = Arc::new(Link {
                peer,
                stream,
                writer: Mutex::new(write_half),
                credits: Mutex::new(CREDIT_WINDOW),
                credit_cond: Condvar::new(),
                broken: Mutex::new(None),
            });
            let reader_link = link.clone();
            let reader_shared = shared.clone();
            readers.push(
                thread::Builder::new()
                    .name(format!("trance-net-rx-{peer}"))
                    .spawn(move || reader_loop(read_half, reader_link, reader_shared))?,
            );
            links.push(Some(link));
        }
        Ok(NetExchange {
            rank,
            shared,
            links,
            seq: AtomicU64::new(0),
            cancel: Mutex::new(None),
            sent_frames: AtomicU64::new(0),
            drop_after: AtomicU64::new(u64::MAX),
            readers: Mutex::new(readers),
        })
    }

    /// Installs the run's cancellation token: senders and collective waiters
    /// observe it at every wake-up tick, so a cancelled run unblocks even
    /// while peers straggle.
    pub fn set_cancel(&self, token: Option<CancelToken>) {
        *lock(&self.cancel) = token;
    }

    /// Arms the chaos drop: after `after_frames` sent data frames, this rank
    /// severs its link to the next rank, simulating a mid-run connection
    /// loss.
    pub fn set_drop_after(&self, after_frames: u64) {
        self.drop_after
            .store(after_frames.max(1), Ordering::Relaxed);
    }

    fn check_cancel(&self) -> trance_dist::Result<()> {
        if let Some(token) = lock(&self.cancel).as_ref() {
            token.check()?;
        }
        Ok(())
    }

    /// The failure recorded on the link to `peer`, if any.
    fn link_broken(&self, peer: usize) -> Option<String> {
        self.links[peer].as_ref().and_then(|l| l.broken_detail())
    }

    /// The peer whose link the chaos drop severs: the victim's next rank.
    fn drop_target(&self) -> Option<usize> {
        (self.shared.ranks > 1).then(|| (self.rank + 1) % self.shared.ranks)
    }

    fn send_data(&self, peer: usize, seq: u64, op: u8, payload: &[u8]) -> trance_dist::Result<()> {
        let link = self.links[peer]
            .as_ref()
            .ok_or_else(|| ExecError::Other("no data link to own rank".into()))?;
        let mut buf = Vec::with_capacity(9 + payload.len());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.push(op);
        buf.extend_from_slice(payload);

        // Acquire one credit, waking periodically to observe cancellation
        // and failure of the target link (a broken link elsewhere in the
        // mesh must not abort this send — see the module docs).
        loop {
            if let Some(detail) = link.broken_detail() {
                return Err(net_err(detail));
            }
            self.check_cancel()?;
            let mut credits = lock(&link.credits);
            if *credits > 0 {
                *credits -= 1;
                break;
            }
            let (guard, _) = link
                .credit_cond
                .wait_timeout(credits, WAIT_TICK)
                .unwrap_or_else(|e| e.into_inner());
            drop(guard);
        }

        // Chaos: sever the designated link exactly when the counter crosses
        // the armed threshold.
        let sent = self.sent_frames.fetch_add(1, Ordering::Relaxed) + 1;
        if sent == self.drop_after.load(Ordering::Relaxed) {
            if let Some(target) = self.drop_target() {
                if let Some(victim_link) = self.links[target].as_ref() {
                    victim_link.stream.shutdown(Shutdown::Both).ok();
                }
            }
        }

        let result = {
            let mut w = lock(&link.writer);
            wire::write_frame(&mut *w, FRAME_DATA, &buf).and_then(|_| w.flush())
        };
        if let Err(e) = result {
            let detail = format!("data link to rank {} failed: {e}", link.peer);
            link.mark_broken(&self.shared, detail.clone());
            return Err(net_err(detail));
        }
        Ok(())
    }

    /// Waits until `ready` holds for round `seq`, then removes and returns
    /// the round. Readiness is checked **before** failure, and failure is
    /// per-peer: the wait aborts (typed `Retryable`) only when some peer's
    /// link is broken while `missing(round, peer)` says its contribution to
    /// *this* round has not arrived — frames a finished peer delivered
    /// ahead of its orderly close still complete their rounds.
    fn wait_round(
        &self,
        seq: u64,
        ready: impl Fn(&Round) -> bool,
        missing: impl Fn(&Round, usize) -> bool,
    ) -> trance_dist::Result<Round> {
        let ranks = self.shared.ranks;
        let mut inner = lock(&self.shared.inner);
        loop {
            let round = inner.rounds.entry(seq).or_insert_with(|| Round::new(ranks));
            if let Some(d) = round.desync.clone() {
                inner.rounds.remove(&seq);
                return Err(net_err(d));
            }
            if ready(round) {
                return Ok(inner.rounds.remove(&seq).expect("round just observed"));
            }
            for peer in 0..ranks {
                if peer == self.rank || !missing(round, peer) {
                    continue;
                }
                if let Some(detail) = self.link_broken(peer) {
                    inner.rounds.remove(&seq);
                    return Err(net_err(detail));
                }
            }
            if let Some(token) = lock(&self.cancel).as_ref() {
                token.check()?;
            }
            inner = self
                .shared
                .cond
                .wait_timeout(inner, WAIT_TICK)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Collective rounds this rank has issued on the mesh so far.
    pub fn rounds_issued(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Tears the mesh down: severs every link and joins the reader threads.
    /// Called by the worker after each attempt — on failure this is what
    /// cascades EOF to peers so nobody waits on a rank that already gave up.
    pub fn close(&self) {
        for link in self.links.iter().flatten() {
            link.stream.shutdown(Shutdown::Both).ok();
        }
        for handle in lock(&self.readers).drain(..) {
            handle.join().ok();
        }
    }
}

impl Exchange for NetExchange {
    fn rank(&self) -> usize {
        self.rank
    }

    fn ranks(&self) -> usize {
        self.shared.ranks
    }

    fn shuffle(&self, outgoing: Vec<(usize, Vec<u8>)>) -> trance_dist::Result<Vec<Vec<u8>>> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let me = self.rank;
        let ranks = self.shared.ranks;
        let mut local = Vec::new();
        for (target, payload) in outgoing {
            if target >= ranks {
                return Err(ExecError::Other(format!(
                    "shuffle target rank {target} out of range (ranks {ranks})"
                )));
            }
            if target == me {
                local.push(payload);
            } else {
                self.send_data(target, seq, OP_SHUFFLE, &payload)?;
            }
        }
        for peer in 0..ranks {
            if peer != me {
                self.send_data(peer, seq, OP_SHUFFLE_DONE, &[])?;
            }
        }
        let mut round = self.wait_round(
            seq,
            |r| (0..ranks).all(|q| q == me || r.done[q]),
            |r, q| !r.done[q],
        )?;
        round.shuffle.append(&mut local);
        Ok(round.shuffle)
    }

    fn allgather(&self, payload: Vec<u8>) -> trance_dist::Result<Vec<Vec<u8>>> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let me = self.rank;
        let ranks = self.shared.ranks;
        for peer in 0..ranks {
            if peer != me {
                self.send_data(peer, seq, OP_GATHER, &payload)?;
            }
        }
        {
            let mut inner = lock(&self.shared.inner);
            let round = inner.rounds.entry(seq).or_insert_with(|| Round::new(ranks));
            round.gathers[me] = Some(payload);
            self.shared.cond.notify_all();
        }
        let round = self.wait_round(
            seq,
            |r| r.gathers.iter().all(|g| g.is_some()),
            |r, q| r.gathers[q].is_none(),
        )?;
        round
            .gathers
            .into_iter()
            .map(|g| g.ok_or_else(|| net_err("allgather contribution missing")))
            .collect()
    }
}

fn reader_loop(mut stream: TcpStream, link: Arc<Link>, shared: Arc<Shared>) {
    let peer = link.peer;
    loop {
        match wire::read_frame(&mut stream, MAX_NET_FRAME, None) {
            Ok(None) => {
                link.mark_broken(&shared, format!("data link to rank {peer} closed"));
                return;
            }
            Err(e) => {
                link.mark_broken(&shared, format!("data link to rank {peer} failed: {e}"));
                return;
            }
            Ok(Some((header, payload))) => match header.kind {
                FRAME_CREDIT => {
                    let Ok(grant) = <[u8; 4]>::try_from(payload.as_slice()) else {
                        link.mark_broken(
                            &shared,
                            format!("malformed credit frame from rank {peer}"),
                        );
                        return;
                    };
                    let mut credits = lock(&link.credits);
                    *credits = credits.saturating_add(u32::from_le_bytes(grant));
                    link.credit_cond.notify_all();
                }
                FRAME_DATA => {
                    let mut r = ByteReader::new(&payload);
                    let parsed = (|| -> io::Result<(u64, u8, Vec<u8>)> {
                        let seq = r.u64()?;
                        let op = r.u8()?;
                        let rest = r.raw(r.remaining())?.to_vec();
                        Ok((seq, op, rest))
                    })();
                    let Ok((seq, op, rest)) = parsed else {
                        link.mark_broken(&shared, format!("malformed data frame from rank {peer}"));
                        return;
                    };
                    {
                        let ranks = shared.ranks;
                        let mut inner = lock(&shared.inner);
                        let round = inner.rounds.entry(seq).or_insert_with(|| Round::new(ranks));
                        match op {
                            OP_SHUFFLE => round.shuffle.push(rest),
                            OP_SHUFFLE_DONE if !round.done[peer] => round.done[peer] = true,
                            OP_GATHER if round.gathers[peer].is_none() => {
                                round.gathers[peer] = Some(rest);
                            }
                            _ => {
                                round.desync = Some(format!(
                                    "exchange desync: unexpected op {op} from rank {peer} at \
                                     round {seq}"
                                ));
                            }
                        }
                        shared.cond.notify_all();
                    }
                    // Grant the credit back now that the frame is ingested.
                    link.send_credit(1);
                }
                other => {
                    link.mark_broken(
                        &shared,
                        format!("unexpected frame kind {other:#04x} on data link from rank {peer}"),
                    );
                    return;
                }
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Mesh formation
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Pending {
    map: Mutex<HashMap<(u64, u32), TcpStream>>,
    cond: Condvar,
}

impl Pending {
    fn wait(&self, epoch: u64, from: u32, timeout: Duration) -> io::Result<TcpStream> {
        let deadline = Instant::now() + timeout;
        let mut map = lock(&self.map);
        loop {
            // Connections from aborted older attempts can never be claimed
            // again; drop them so the table stays bounded.
            map.retain(|(e, _), _| *e >= epoch);
            if let Some(stream) = map.remove(&(epoch, from)) {
                return Ok(stream);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no inbound data link from rank {from} for epoch {epoch}"),
                ));
            }
            map = self
                .cond
                .wait_timeout(map, WAIT_TICK)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

/// A worker's persistent data-plane endpoint: one listener bound for the
/// process lifetime, an acceptor thread routing inbound links by their
/// handshake `(epoch, rank)`, and [`DataPlane::connect_mesh`] to assemble
/// the full mesh of one run attempt.
#[derive(Debug)]
pub struct DataPlane {
    addr: String,
    pending: Arc<Pending>,
}

impl DataPlane {
    /// Binds a loopback data listener and starts the acceptor thread.
    pub fn bind() -> io::Result<DataPlane> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let pending = Arc::new(Pending::default());
        let accept_pending = pending.clone();
        thread::Builder::new()
            .name("trance-net-accept".into())
            .spawn(move || accept_loop(listener, accept_pending))?;
        Ok(DataPlane { addr, pending })
    }

    /// The listener's `host:port`, reported to the coordinator in `HELLO`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Assembles the full mesh for one attempt: dials every higher rank
    /// (leading with the epoch handshake) and claims the inbound link of
    /// every lower rank.
    pub fn connect_mesh(
        &self,
        epoch: u64,
        rank: usize,
        addrs: &[String],
    ) -> io::Result<NetExchange> {
        let ranks = addrs.len();
        if rank >= ranks {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("rank {rank} outside cluster of {ranks}"),
            ));
        }
        let mut streams: Vec<Option<TcpStream>> = (0..ranks).map(|_| None).collect();
        for (peer, slot) in streams.iter_mut().enumerate().skip(rank + 1) {
            let mut stream = connect_retry(&addrs[peer], DIAL_TIMEOUT)?;
            stream.set_nodelay(true).ok();
            let mut hello = Vec::with_capacity(12);
            hello.extend_from_slice(&epoch.to_le_bytes());
            hello.extend_from_slice(&(rank as u32).to_le_bytes());
            wire::write_frame(&mut stream, FRAME_HELLO, &hello)?;
            stream.flush()?;
            *slot = Some(stream);
        }
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            *slot = Some(self.pending.wait(epoch, peer as u32, ACCEPT_TIMEOUT)?);
        }
        NetExchange::new(rank, streams)
    }
}

fn connect_retry(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("dialing data link {addr}: {e}"),
                ));
            }
            Err(_) => thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn accept_loop(listener: TcpListener, pending: Arc<Pending>) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // The handshake must arrive promptly or the connection is junk; a
        // bounded read keeps a stalled dialer from wedging the acceptor.
        stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
        let hello = wire::read_frame(&mut stream, 64, None);
        let Ok(Some((header, payload))) = hello else {
            continue;
        };
        if header.kind != FRAME_HELLO || payload.len() != 12 {
            continue;
        }
        let mut r = ByteReader::new(&payload);
        let (Ok(epoch), Ok(from)) = (r.u64(), r.u32()) else {
            continue;
        };
        stream.set_read_timeout(None).ok();
        let mut map = lock(&pending.map);
        map.insert((epoch, from), stream);
        pending.cond.notify_all();
    }
}

/// Builds the wire bytes of one data frame — exposed for the socket fuzz
/// tests, which corrupt real frames and assert the decoder's typed errors.
pub fn encode_data_frame(seq: u64, op: u8, payload: &[u8]) -> io::Result<Vec<u8>> {
    let mut body = ByteWriter::new();
    body.u64(seq);
    body.u8(op);
    body.raw(payload);
    let body = body.into_bytes();
    let mut frame = Vec::with_capacity(wire::HEADER_LEN + body.len());
    wire::write_frame(&mut frame, FRAME_DATA, &body)?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spins up an n-rank TCP mesh on loopback and returns the exchanges.
    fn tcp_mesh(ranks: usize) -> Vec<Arc<NetExchange>> {
        let planes: Vec<DataPlane> = (0..ranks).map(|_| DataPlane::bind().unwrap()).collect();
        let addrs: Vec<String> = planes.iter().map(|p| p.addr().to_string()).collect();
        thread::scope(|s| {
            let handles: Vec<_> = planes
                .iter()
                .enumerate()
                .map(|(rank, plane)| {
                    let addrs = addrs.clone();
                    s.spawn(move || plane.connect_mesh(7, rank, &addrs).unwrap())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| Arc::new(h.join().unwrap()))
                .collect()
        })
    }

    #[test]
    fn tcp_mesh_shuffles_and_gathers_like_the_reference() {
        let mesh = tcp_mesh(3);
        let results: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = mesh
                .iter()
                .map(|ex| {
                    let ex = ex.clone();
                    s.spawn(move || {
                        let me = ex.rank();
                        let outgoing: Vec<(usize, Vec<u8>)> = (0..ex.ranks())
                            .map(|t| (t, vec![me as u8, t as u8]))
                            .collect();
                        let mut got = ex.shuffle(outgoing).unwrap();
                        got.sort();
                        let gathered = ex.allgather(vec![me as u8; me + 1]).unwrap();
                        (got, gathered)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, (got, gathered)) in results.iter().enumerate() {
            let expect: Vec<Vec<u8>> = (0..3u8).map(|s| vec![s, rank as u8]).collect();
            assert_eq!(got, &expect, "rank {rank} shuffle inbox");
            assert_eq!(
                gathered,
                &vec![vec![0u8; 1], vec![1u8; 2], vec![2u8; 3]],
                "rank {rank} allgather"
            );
        }
        for ex in &mesh {
            ex.close();
        }
    }

    #[test]
    fn severed_link_surfaces_typed_retryable() {
        let mesh = tcp_mesh(2);
        // Rank 0 severs its link, then both sides must fail with a typed
        // Retryable — never a panic or a hang.
        mesh[0].links[1]
            .as_ref()
            .unwrap()
            .stream
            .shutdown(Shutdown::Both)
            .ok();
        let errs: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = mesh
                .iter()
                .map(|ex| {
                    let ex = ex.clone();
                    s.spawn(move || ex.allgather(vec![1, 2, 3]).unwrap_err())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for err in errs {
            assert!(err.is_retryable(), "expected retryable, got {err}");
        }
        for ex in &mesh {
            ex.close();
        }
    }

    #[test]
    fn credit_window_survives_many_small_frames() {
        // Far more frames than the credit window: progress proves grants
        // flow back while both sides keep sending.
        let mesh = tcp_mesh(2);
        let rounds = (CREDIT_WINDOW * 4) as usize;
        thread::scope(|s| {
            for ex in &mesh {
                let ex = ex.clone();
                s.spawn(move || {
                    for i in 0..rounds {
                        let out = vec![(1 - ex.rank(), vec![i as u8; 64])];
                        let got = ex.shuffle(out).unwrap();
                        assert_eq!(got.len(), 1);
                        assert_eq!(got[0], vec![i as u8; 64]);
                    }
                });
            }
        });
        for ex in &mesh {
            ex.close();
        }
    }
}
