//! trance-net — true multi-node execution for the trance engine.
//!
//! The engine's SPMD model runs the same deterministic `PlanProgram` on
//! every rank and funnels all cross-partition movement through the
//! `Exchange` collectives. This crate supplies the network backend:
//!
//! - [`msg`]: the control protocol between `trance-coordinator` and
//!   `trance-worker`, riding the hardened spill wire format (magic,
//!   version, CRC-32, bounded lengths) so corrupt frames surface as typed
//!   errors, never panics or over-allocation.
//! - [`exchange`]: the async TCP data plane — one connection per worker
//!   pair, per-link credit-based backpressure, reorder-tolerant collective
//!   rounds, and typed `Retryable` errors on connection loss that feed the
//!   engine's retry/lineage recovery and the coordinator's global retry.
//! - [`coordinator`] / [`worker`]: the binary pair — the coordinator
//!   partitions the catalog across worker processes, drives jobs attempt by
//!   attempt, and merges per-rank rows back into one bag in partition
//!   order.
//! - [`smoke`]: the differential smoke suite proving TCP runs bag-identical
//!   to the in-process thread oracle (which stays the single-node oracle).
//! - [`testkit`]: self-spawning multi-process clusters for the test suites.

#![warn(missing_docs)]

pub mod coordinator;
pub mod exchange;
pub mod link;
pub mod msg;
pub mod smoke;
pub mod testkit;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorListener, JobReport, JobSpec, MAX_JOB_ATTEMPTS};
pub use exchange::{DataPlane, NetExchange, CREDIT_WINDOW};
pub use link::FramedConn;
pub use msg::{ClusterParams, Ctrl, DropSpec, ErrKind, LoadKind, NetStats, Outcome};
pub use smoke::{run_smoke, SmokeOutcome};
pub use testkit::{spawn_self_cluster, LocalCluster};
