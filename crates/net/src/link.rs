//! Framed control-plane connections: one [`trance_store::wire`] frame per
//! control message over a TCP stream, safe to send from one thread while
//! another blocks in `recv` (reader and writer halves lock independently).

use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::Mutex;

use trance_store::wire;

use crate::msg::{Ctrl, FRAME_CTRL, MAX_NET_FRAME};

/// A control connection carrying length-prefixed, checksummed [`Ctrl`]
/// frames.
#[derive(Debug)]
pub struct FramedConn {
    reader: Mutex<TcpStream>,
    writer: Mutex<TcpStream>,
}

impl FramedConn {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> io::Result<FramedConn> {
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(FramedConn {
            reader: Mutex::new(reader),
            writer: Mutex::new(stream),
        })
    }

    /// Sends one control message as a single frame.
    pub fn send(&self, msg: &Ctrl) -> io::Result<()> {
        let payload = msg.encode()?;
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        wire::write_frame(&mut *w, FRAME_CTRL, &payload)?;
        w.flush()
    }

    /// Receives the next control message; `Ok(None)` on an orderly close.
    /// Corrupt frames (bad magic, length, checksum, unknown tag) surface as
    /// `InvalidData` — the decoder never panics or over-allocates.
    pub fn recv(&self) -> io::Result<Option<Ctrl>> {
        let mut r = self.reader.lock().unwrap_or_else(|e| e.into_inner());
        match wire::read_frame(&mut *r, MAX_NET_FRAME, None)? {
            None => Ok(None),
            Some((header, payload)) => {
                if header.kind != FRAME_CTRL {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected control frame, got kind {:#04x}", header.kind),
                    ));
                }
                Ctrl::decode(&payload).map(Some)
            }
        }
    }
}
