//! The control-plane protocol between `trance-coordinator` and
//! `trance-worker` processes, plus the frame-kind constants shared with the
//! worker⇄worker data plane.
//!
//! Every message rides one [`trance_store::wire`] frame (magic, version,
//! kind, length, CRC-32), so the transport inherits the spill codec's
//! hardening: corrupt frames surface as typed `InvalidData` errors, lengths
//! are capped at [`MAX_NET_FRAME`], and payload buffers grow only as bytes
//! actually arrive. Message bodies are encoded with the bounded
//! [`ByteReader`]/[`ByteWriter`] primitives — the same length-validated
//! codec the spill files use — so a malformed body can never panic or
//! over-allocate either.

use std::io;

use trance_dist::StatsSnapshot;
use trance_nrc::Value;
use trance_shred::NestingStructure;
use trance_store::{decode_value, encode_value, ByteReader, ByteWriter};

/// Frame kind: a control-plane message (coordinator ⇄ worker).
pub const FRAME_CTRL: u8 = 0x10;

/// Frame kind: a data-plane collective payload (worker ⇄ worker).
pub const FRAME_DATA: u8 = 0x11;

/// Frame kind: a data-plane credit grant (flow control).
pub const FRAME_CREDIT: u8 = 0x12;

/// Frame kind: the data-plane link handshake (mesh epoch + dialing rank).
pub const FRAME_HELLO: u8 = 0x13;

/// Per-frame payload cap on network links: far above any frame the engine
/// produces (shuffle pieces and row chunks are bounded), far below anything
/// a corrupt length prefix could use to balloon memory.
pub const MAX_NET_FRAME: usize = 64 * 1024 * 1024;

/// Nesting depth cap when decoding input structures — matches the frontend's
/// expression depth guard in spirit: untrusted recursion must be bounded.
const MAX_STRUCTURE_DEPTH: usize = 64;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Cluster shape the coordinator imposes on every worker (ranks share one
/// deterministic configuration, or their plans would diverge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterParams {
    /// Hash partitions of every collection (global, not per rank).
    pub partitions: u32,
    /// Worker-pool threads per rank.
    pub threads: u32,
    /// Broadcast-join size limit in bytes.
    pub broadcast_limit: u64,
}

/// Which input map a [`Ctrl::Load`] message fills on the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// A flat relation (registered for both the nested and shredded routes).
    Flat,
    /// The nested form of a nested relation.
    Nested,
    /// One shredded collection (flat top bag or dictionary) under its exact
    /// shredded name.
    Shredded,
}

/// A seeded chaos instruction: the victim rank severs one of its data links
/// after sending `after_frames` frames, so the run exercises the
/// connection-loss → `Retryable` → global-retry recovery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropSpec {
    /// Rank that performs the drop.
    pub victim: u32,
    /// Data-plane frames the victim sends before severing the link.
    pub after_frames: u64,
}

/// How a worker's run ended, classified for the coordinator's retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// Transient (connection loss, injected fault): the coordinator retries
    /// the whole job on a fresh mesh.
    Retryable,
    /// The run was cancelled (explicitly or by deadline): never retried.
    Cancelled,
    /// Deterministic failure (bad query, unsupported strategy, engine
    /// error): retrying cannot help.
    Fatal,
}

/// The per-rank counters a worker ships with its result; the coordinator
/// sums them across ranks, and the `dist_agree` suite asserts the summed
/// logical shuffle bytes equal the single-process oracle's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Rows moved through shuffles.
    pub shuffled_tuples: u64,
    /// Logical (row-equivalent) shuffle bytes.
    pub shuffled_bytes: u64,
    /// Exact physical shuffle buffer bytes.
    pub shuffled_bytes_phys: u64,
    /// Rows replicated by broadcasts.
    pub broadcast_tuples: u64,
    /// Logical broadcast bytes.
    pub broadcast_bytes: u64,
    /// Physical broadcast bytes.
    pub broadcast_bytes_phys: u64,
    /// Partitioned shuffle hash joins taken.
    pub shuffle_joins: u64,
    /// Broadcast joins taken.
    pub broadcast_joins: u64,
    /// Skew-aware joins whose heavy part broadcast.
    pub skew_broadcast_joins: u64,
    /// Skew-aware joins whose heavy part fell back to a shuffle.
    pub skew_fallback_joins: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Spill files created.
    pub spill_files: u64,
    /// Faults fired by the rank's injector.
    pub faults_injected: u64,
    /// Bounded-retry attempts that absorbed retryable failures.
    pub retries: u64,
    /// Partitions recovered through lineage recomputation.
    pub recovered_partitions: u64,
    /// 1 when the rank's run was cancelled.
    pub cancelled: u64,
}

impl NetStats {
    fn as_array(&self) -> [u64; 16] {
        [
            self.shuffled_tuples,
            self.shuffled_bytes,
            self.shuffled_bytes_phys,
            self.broadcast_tuples,
            self.broadcast_bytes,
            self.broadcast_bytes_phys,
            self.shuffle_joins,
            self.broadcast_joins,
            self.skew_broadcast_joins,
            self.skew_fallback_joins,
            self.spilled_bytes,
            self.spill_files,
            self.faults_injected,
            self.retries,
            self.recovered_partitions,
            self.cancelled,
        ]
    }

    fn from_array(a: [u64; 16]) -> NetStats {
        NetStats {
            shuffled_tuples: a[0],
            shuffled_bytes: a[1],
            shuffled_bytes_phys: a[2],
            broadcast_tuples: a[3],
            broadcast_bytes: a[4],
            broadcast_bytes_phys: a[5],
            shuffle_joins: a[6],
            broadcast_joins: a[7],
            skew_broadcast_joins: a[8],
            skew_fallback_joins: a[9],
            spilled_bytes: a[10],
            spill_files: a[11],
            faults_injected: a[12],
            retries: a[13],
            recovered_partitions: a[14],
            cancelled: a[15],
        }
    }

    /// Adds another rank's counters into this one (saturating: a sum of
    /// per-rank meters must never wrap into a *smaller* report).
    pub fn absorb(&mut self, other: &NetStats) {
        let mine = self.as_array();
        let theirs = other.as_array();
        let mut out = [0u64; 16];
        for (slot, (m, t)) in out.iter_mut().zip(mine.iter().zip(theirs.iter())) {
            *slot = m.saturating_add(*t);
        }
        *self = NetStats::from_array(out);
    }
}

impl From<&StatsSnapshot> for NetStats {
    fn from(s: &StatsSnapshot) -> NetStats {
        NetStats {
            shuffled_tuples: s.shuffled_tuples,
            shuffled_bytes: s.shuffled_bytes,
            shuffled_bytes_phys: s.shuffled_bytes_phys,
            broadcast_tuples: s.broadcast_tuples,
            broadcast_bytes: s.broadcast_bytes,
            broadcast_bytes_phys: s.broadcast_bytes_phys,
            shuffle_joins: s.shuffle_joins,
            broadcast_joins: s.broadcast_joins,
            skew_broadcast_joins: s.skew_broadcast_joins,
            skew_fallback_joins: s.skew_fallback_joins,
            spilled_bytes: s.spilled_bytes,
            spill_files: s.spill_files,
            faults_injected: s.faults_injected,
            retries: s.retries,
            recovered_partitions: s.recovered_partitions,
            cancelled: s.cancelled,
        }
    }
}

/// How a worker's run ended: the counters on success, a classified error
/// otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The rank completed; its rows were shipped as [`Ctrl::Rows`] chunks.
    Ok(NetStats),
    /// The rank failed.
    Err {
        /// Error class for the coordinator's retry decision.
        kind: ErrKind,
        /// Human-readable detail.
        detail: String,
    },
}

/// A control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub enum Ctrl {
    /// Worker → coordinator, first message: here is my data-plane address.
    Hello {
        /// The worker's data listener address (`host:port`).
        data_addr: String,
    },
    /// Coordinator → worker: your rank, everyone's data addresses, and the
    /// cluster shape every rank must configure identically.
    Peers {
        /// The receiving worker's rank.
        rank: u32,
        /// Data-plane addresses indexed by rank.
        data_addrs: Vec<String>,
        /// Shared cluster configuration.
        params: ClusterParams,
    },
    /// Coordinator → worker: register pre-partitioned input rows. Only the
    /// receiving rank's owned partition slots are populated; the vector is
    /// full-length so every rank sees the same partition layout.
    Load {
        /// Which input map to fill.
        kind: LoadKind,
        /// Input (or shredded-collection) name.
        name: String,
        /// Full-length partition vector, non-owned slots empty.
        parts: Vec<Vec<Value>>,
    },
    /// Coordinator → worker: execute one attempt of a job.
    Run {
        /// Mesh epoch — data links handshake with it so late connections
        /// from an aborted attempt can never join the wrong mesh.
        epoch: u64,
        /// Job id.
        job: u64,
        /// Attempt number (0-based; chaos drops fire on attempt 0 only).
        attempt: u32,
        /// Strategy label (see `trance_compiler::Strategy::label`).
        strategy: String,
        /// The query as NRC surface text (`parse(pretty(e)) == e`).
        query: String,
        /// Nested-input declarations: name plus nesting structure.
        decls: Vec<(String, NestingStructure)>,
        /// Cooperative deadline for the run, in milliseconds.
        deadline_ms: Option<u64>,
        /// Chaos instruction, if this attempt injects a connection drop.
        drop: Option<DropSpec>,
    },
    /// Worker → coordinator: one chunk of result rows for `(job, attempt)`.
    Rows {
        /// Job id.
        job: u64,
        /// Attempt the rows belong to (stale attempts are discarded).
        attempt: u32,
        /// Result rows, in the rank's partition order.
        rows: Vec<Value>,
    },
    /// Worker → coordinator: the rank's attempt finished.
    Result {
        /// Job id.
        job: u64,
        /// Attempt number.
        attempt: u32,
        /// Success (with counters) or classified failure.
        outcome: Outcome,
    },
    /// Coordinator → worker: cancel the in-flight run.
    Cancel {
        /// Job id (informational; the current run is cancelled).
        job: u64,
        /// Reason surfaced in the `Cancelled` error.
        reason: String,
    },
    /// Coordinator → worker: exit the serve loop.
    Shutdown,
}

const TAG_HELLO: u8 = 1;
const TAG_PEERS: u8 = 2;
const TAG_LOAD: u8 = 3;
const TAG_RUN: u8 = 4;
const TAG_ROWS: u8 = 5;
const TAG_RESULT: u8 = 6;
const TAG_CANCEL: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;

fn encode_rows(w: &mut ByteWriter, rows: &[Value]) -> io::Result<()> {
    w.len_u32(rows.len(), "row chunk")?;
    for row in rows {
        encode_value(row, w)?;
    }
    Ok(())
}

fn decode_rows(r: &mut ByteReader<'_>) -> io::Result<Vec<Value>> {
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(r.bounded_capacity(n));
    for _ in 0..n {
        rows.push(decode_value(r)?);
    }
    Ok(rows)
}

fn encode_parts(w: &mut ByteWriter, parts: &[Vec<Value>]) -> io::Result<()> {
    w.len_u32(parts.len(), "partition vector")?;
    for part in parts {
        encode_rows(w, part)?;
    }
    Ok(())
}

fn decode_parts(r: &mut ByteReader<'_>) -> io::Result<Vec<Vec<Value>>> {
    let n = r.u32()? as usize;
    let mut parts = Vec::with_capacity(r.bounded_capacity(n));
    for _ in 0..n {
        parts.push(decode_rows(r)?);
    }
    Ok(parts)
}

fn encode_structure(w: &mut ByteWriter, s: &NestingStructure) -> io::Result<()> {
    w.len_u32(s.children.len(), "structure children")?;
    for (name, child) in &s.children {
        w.str(name)?;
        encode_structure(w, child)?;
    }
    Ok(())
}

fn decode_structure(r: &mut ByteReader<'_>, depth: usize) -> io::Result<NestingStructure> {
    if depth > MAX_STRUCTURE_DEPTH {
        return Err(invalid("input structure nests too deep"));
    }
    let n = r.u32()? as usize;
    let mut s = NestingStructure::flat();
    for _ in 0..n {
        let name = r.str()?;
        let child = decode_structure(r, depth + 1)?;
        s.children.insert(name, child);
    }
    Ok(s)
}

fn encode_opt_u64(w: &mut ByteWriter, v: Option<u64>) {
    match v {
        Some(v) => {
            w.u8(1);
            w.u64(v);
        }
        None => w.u8(0),
    }
}

fn decode_opt_u64(r: &mut ByteReader<'_>) -> io::Result<Option<u64>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        other => Err(invalid(format!("bad option tag {other}"))),
    }
}

impl Ctrl {
    /// Encodes the message body (the caller frames it as [`FRAME_CTRL`]).
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut w = ByteWriter::new();
        match self {
            Ctrl::Hello { data_addr } => {
                w.u8(TAG_HELLO);
                w.str(data_addr)?;
            }
            Ctrl::Peers {
                rank,
                data_addrs,
                params,
            } => {
                w.u8(TAG_PEERS);
                w.u32(*rank);
                w.len_u32(data_addrs.len(), "peer addresses")?;
                for addr in data_addrs {
                    w.str(addr)?;
                }
                w.u32(params.partitions);
                w.u32(params.threads);
                w.u64(params.broadcast_limit);
            }
            Ctrl::Load { kind, name, parts } => {
                w.u8(TAG_LOAD);
                w.u8(match kind {
                    LoadKind::Flat => 0,
                    LoadKind::Nested => 1,
                    LoadKind::Shredded => 2,
                });
                w.str(name)?;
                encode_parts(&mut w, parts)?;
            }
            Ctrl::Run {
                epoch,
                job,
                attempt,
                strategy,
                query,
                decls,
                deadline_ms,
                drop,
            } => {
                w.u8(TAG_RUN);
                w.u64(*epoch);
                w.u64(*job);
                w.u32(*attempt);
                w.str(strategy)?;
                w.str(query)?;
                w.len_u32(decls.len(), "input declarations")?;
                for (name, structure) in decls {
                    w.str(name)?;
                    encode_structure(&mut w, structure)?;
                }
                encode_opt_u64(&mut w, *deadline_ms);
                match drop {
                    Some(d) => {
                        w.u8(1);
                        w.u32(d.victim);
                        w.u64(d.after_frames);
                    }
                    None => w.u8(0),
                }
            }
            Ctrl::Rows { job, attempt, rows } => {
                w.u8(TAG_ROWS);
                w.u64(*job);
                w.u32(*attempt);
                encode_rows(&mut w, rows)?;
            }
            Ctrl::Result {
                job,
                attempt,
                outcome,
            } => {
                w.u8(TAG_RESULT);
                w.u64(*job);
                w.u32(*attempt);
                match outcome {
                    Outcome::Ok(stats) => {
                        w.u8(0);
                        for v in stats.as_array() {
                            w.u64(v);
                        }
                    }
                    Outcome::Err { kind, detail } => {
                        w.u8(match kind {
                            ErrKind::Retryable => 1,
                            ErrKind::Cancelled => 2,
                            ErrKind::Fatal => 3,
                        });
                        w.str(detail)?;
                    }
                }
            }
            Ctrl::Cancel { job, reason } => {
                w.u8(TAG_CANCEL);
                w.u64(*job);
                w.str(reason)?;
            }
            Ctrl::Shutdown => w.u8(TAG_SHUTDOWN),
        }
        Ok(w.into_bytes())
    }

    /// Decodes a message body. Every field is untrusted: lengths are bounded
    /// by the buffer, recursion is depth-capped, unknown tags are
    /// `InvalidData` — never a panic, never an over-allocation.
    pub fn decode(bytes: &[u8]) -> io::Result<Ctrl> {
        let mut r = ByteReader::new(bytes);
        let msg = match r.u8()? {
            TAG_HELLO => Ctrl::Hello {
                data_addr: r.str()?,
            },
            TAG_PEERS => {
                let rank = r.u32()?;
                let n = r.u32()? as usize;
                let mut data_addrs = Vec::with_capacity(r.bounded_capacity(n));
                for _ in 0..n {
                    data_addrs.push(r.str()?);
                }
                let params = ClusterParams {
                    partitions: r.u32()?,
                    threads: r.u32()?,
                    broadcast_limit: r.u64()?,
                };
                Ctrl::Peers {
                    rank,
                    data_addrs,
                    params,
                }
            }
            TAG_LOAD => {
                let kind = match r.u8()? {
                    0 => LoadKind::Flat,
                    1 => LoadKind::Nested,
                    2 => LoadKind::Shredded,
                    other => return Err(invalid(format!("bad load kind {other}"))),
                };
                let name = r.str()?;
                let parts = decode_parts(&mut r)?;
                Ctrl::Load { kind, name, parts }
            }
            TAG_RUN => {
                let epoch = r.u64()?;
                let job = r.u64()?;
                let attempt = r.u32()?;
                let strategy = r.str()?;
                let query = r.str()?;
                let n = r.u32()? as usize;
                let mut decls = Vec::with_capacity(r.bounded_capacity(n));
                for _ in 0..n {
                    let name = r.str()?;
                    let structure = decode_structure(&mut r, 0)?;
                    decls.push((name, structure));
                }
                let deadline_ms = decode_opt_u64(&mut r)?;
                let drop = match r.u8()? {
                    0 => None,
                    1 => Some(DropSpec {
                        victim: r.u32()?,
                        after_frames: r.u64()?,
                    }),
                    other => return Err(invalid(format!("bad drop tag {other}"))),
                };
                Ctrl::Run {
                    epoch,
                    job,
                    attempt,
                    strategy,
                    query,
                    decls,
                    deadline_ms,
                    drop,
                }
            }
            TAG_ROWS => Ctrl::Rows {
                job: r.u64()?,
                attempt: r.u32()?,
                rows: decode_rows(&mut r)?,
            },
            TAG_RESULT => {
                let job = r.u64()?;
                let attempt = r.u32()?;
                let outcome = match r.u8()? {
                    0 => {
                        let mut a = [0u64; 16];
                        for slot in &mut a {
                            *slot = r.u64()?;
                        }
                        Outcome::Ok(NetStats::from_array(a))
                    }
                    kind @ 1..=3 => Outcome::Err {
                        kind: match kind {
                            1 => ErrKind::Retryable,
                            2 => ErrKind::Cancelled,
                            _ => ErrKind::Fatal,
                        },
                        detail: r.str()?,
                    },
                    other => return Err(invalid(format!("bad outcome tag {other}"))),
                };
                Ctrl::Result {
                    job,
                    attempt,
                    outcome,
                }
            }
            TAG_CANCEL => Ctrl::Cancel {
                job: r.u64()?,
                reason: r.str()?,
            },
            TAG_SHUTDOWN => Ctrl::Shutdown,
            other => return Err(invalid(format!("unknown control message tag {other}"))),
        };
        if r.remaining() != 0 {
            return Err(invalid(format!(
                "{} trailing bytes after control message",
                r.remaining()
            )));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Ctrl) {
        let bytes = msg.encode().unwrap();
        assert_eq!(Ctrl::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn control_messages_round_trip() {
        roundtrip(Ctrl::Hello {
            data_addr: "127.0.0.1:4000".into(),
        });
        roundtrip(Ctrl::Peers {
            rank: 2,
            data_addrs: vec!["a:1".into(), "b:2".into(), "c:3".into()],
            params: ClusterParams {
                partitions: 8,
                threads: 2,
                broadcast_limit: 64,
            },
        });
        roundtrip(Ctrl::Load {
            kind: LoadKind::Nested,
            name: "COP".into(),
            parts: vec![
                vec![Value::Int(1), Value::str("x")],
                Vec::new(),
                vec![Value::tuple([("a", Value::Real(0.5))])],
            ],
        });
        let structure = NestingStructure::flat().with_child(
            "corders",
            NestingStructure::flat().with_child("oparts", NestingStructure::flat()),
        );
        roundtrip(Ctrl::Run {
            epoch: 9,
            job: 3,
            attempt: 1,
            strategy: "STANDARD".into(),
            query: "for x in R union {( u := x.a )}".into(),
            decls: vec![("COP".into(), structure)],
            deadline_ms: Some(250),
            drop: Some(DropSpec {
                victim: 1,
                after_frames: 4,
            }),
        });
        roundtrip(Ctrl::Rows {
            job: 3,
            attempt: 1,
            rows: vec![Value::Int(7), Value::Null],
        });
        roundtrip(Ctrl::Result {
            job: 3,
            attempt: 1,
            outcome: Outcome::Ok(NetStats {
                shuffled_bytes: 123,
                retries: 1,
                ..NetStats::default()
            }),
        });
        roundtrip(Ctrl::Result {
            job: 3,
            attempt: 0,
            outcome: Outcome::Err {
                kind: ErrKind::Retryable,
                detail: "data link to rank 1 closed".into(),
            },
        });
        roundtrip(Ctrl::Cancel {
            job: 3,
            reason: "deadline".into(),
        });
        roundtrip(Ctrl::Shutdown);
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        assert!(Ctrl::decode(&[]).is_err());
        assert!(Ctrl::decode(&[0xFF]).is_err());
        // Truncated in the middle of a Peers address list.
        let good = Ctrl::Peers {
            rank: 0,
            data_addrs: vec!["addr".into()],
            params: ClusterParams {
                partitions: 4,
                threads: 1,
                broadcast_limit: 1,
            },
        }
        .encode()
        .unwrap();
        for cut in 1..good.len() {
            let _ = Ctrl::decode(&good[..cut]); // must not panic
        }
        // A forged huge length must not allocate: the reader bounds capacity
        // by the bytes actually present.
        let mut forged = Vec::new();
        forged.push(TAG_ROWS);
        forged.extend_from_slice(&0u64.to_le_bytes());
        forged.extend_from_slice(&0u32.to_le_bytes());
        forged.extend_from_slice(&u32::MAX.to_le_bytes()); // "4 billion rows"
        assert!(Ctrl::decode(&forged).is_err());
    }

    #[test]
    fn stats_absorb_saturates() {
        let mut a = NetStats {
            shuffled_bytes: u64::MAX - 1,
            ..NetStats::default()
        };
        a.absorb(&NetStats {
            shuffled_bytes: 10,
            retries: 2,
            ..NetStats::default()
        });
        assert_eq!(a.shuffled_bytes, u64::MAX);
        assert_eq!(a.retries, 2);
    }
}
