//! The multi-node smoke suite: the paper's running example executed on a
//! live coordinator + worker cluster, differentially checked against the
//! in-process engine.
//!
//! The thread backend is the oracle: for every strategy the TCP run must be
//! bag-identical (up to float tolerance — distributed `Real` sums reorder)
//! **and** move exactly the same logical shuffle bytes, because every rank
//! drives the same deterministic plan over the same partition layout. The
//! optional chaos cell severs a data link mid-run and must still converge
//! to the oracle bag through the coordinator's global retry.

use std::time::Instant;

use trance_compiler::{run_query, InputSet, QuerySpec, RunResult, Strategy};
use trance_dist::{ClusterConfig, DistContext};
use trance_nrc::builder::*;
use trance_nrc::{bags_approx_equal, Bag, Expr, Value};
use trance_shred::{NestingStructure, ShreddedInputDecl};

use crate::coordinator::{Coordinator, JobSpec};
use crate::msg::{ClusterParams, DropSpec};

/// Customers in the smoke dataset — small enough for CI, large enough that
/// every partition is non-empty and shuffles actually move rows.
const SMOKE_CUSTOMERS: usize = 60;

/// The customers/orders/parts nested input of the running example (the same
/// generator the compiler's differential suites use, reproduced here so the
/// binaries stay self-contained).
pub fn cop_value(customers: usize) -> Value {
    let mut rows = Vec::new();
    for c in 0..customers {
        let mut orders = Vec::new();
        for o in 0..(c % 4) {
            let mut parts = Vec::new();
            for p in 0..(o + c) % 5 {
                parts.push(Value::tuple([
                    ("pid", Value::Int((p % 7) as i64)),
                    ("qty", Value::Real(1.0 + p as f64)),
                ]));
            }
            orders.push(Value::tuple([
                ("odate", Value::Date(100 + o as i64)),
                ("oparts", Value::bag(parts)),
            ]));
        }
        rows.push(Value::tuple([
            ("cname", Value::str(format!("c{c}"))),
            ("corders", Value::bag(orders)),
        ]));
    }
    Value::bag(rows)
}

/// The flat `Part` side of the running example.
pub fn part_value() -> Value {
    Value::bag(
        (0..7)
            .map(|p| {
                Value::tuple([
                    ("pid", Value::Int(p)),
                    ("pname", Value::str(format!("part{p}"))),
                    ("price", Value::Real(0.5 + p as f64)),
                ])
            })
            .collect(),
    )
}

/// The nesting structure of [`cop_value`].
pub fn cop_structure() -> NestingStructure {
    NestingStructure::flat().with_child(
        "corders",
        NestingStructure::flat().with_child("oparts", NestingStructure::flat()),
    )
}

/// The paper's running example query (nested output, join + aggregation at
/// the innermost level).
pub fn running_example() -> Expr {
    forin(
        "cop",
        var("COP"),
        singleton(tuple([
            ("cname", proj(var("cop"), "cname")),
            (
                "corders",
                forin(
                    "co",
                    proj(var("cop"), "corders"),
                    singleton(tuple([
                        ("odate", proj(var("co"), "odate")),
                        (
                            "oparts",
                            sum_by(
                                forin(
                                    "op",
                                    proj(var("co"), "oparts"),
                                    forin(
                                        "p",
                                        var("Part"),
                                        ifthen(
                                            cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                                            singleton(tuple([
                                                ("pname", proj(var("p"), "pname")),
                                                (
                                                    "total",
                                                    mul(
                                                        proj(var("op"), "qty"),
                                                        proj(var("p"), "price"),
                                                    ),
                                                ),
                                            ])),
                                        ),
                                    ),
                                ),
                                &["pname"],
                                &["total"],
                            ),
                        ),
                    ])),
                ),
            ),
        ])),
    )
}

/// The strategies the smoke suite drives — every strategy with a nested
/// result (shredded-result-only strategies cannot ship rows back).
pub fn smoke_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Standard,
        Strategy::Baseline,
        Strategy::StandardSkew,
        Strategy::ShredUnshred,
        Strategy::ShredUnshredSkew,
    ]
}

/// One verified smoke cell.
#[derive(Debug, Clone)]
pub struct SmokeOutcome {
    /// Cell label (strategy, or `"chaos(<strategy>)"`).
    pub label: String,
    /// Result rows (equal to the oracle's cardinality).
    pub rows: usize,
    /// Whole-job attempts the coordinator used.
    pub attempts: u32,
    /// Summed logical shuffle bytes across ranks.
    pub shuffled_bytes: u64,
    /// Wall-clock milliseconds of the distributed job.
    pub wall_ms: u128,
    /// Wall-clock milliseconds of the in-process oracle run (the
    /// thread-backend side of the thread-vs-TCP comparison).
    pub oracle_wall_ms: u128,
}

/// Runs the running example on the connected cluster, differentially
/// checking every cell against the in-process oracle. With `chaos` set, a
/// final cell injects the connection drop and must recover to the oracle
/// result with `attempts > 1`.
pub fn run_smoke(
    coord: &mut Coordinator,
    params: ClusterParams,
    chaos: Option<DropSpec>,
) -> Result<Vec<SmokeOutcome>, String> {
    let cop = cop_value(SMOKE_CUSTOMERS);
    let part = part_value();
    let cop_bag = cop.as_bag().map_err(|e| e.to_string())?.clone();
    let part_bag = part.as_bag().map_err(|e| e.to_string())?.clone();

    // The in-process oracle: identical cluster shape, thread backend.
    let ctx = DistContext::new(
        ClusterConfig::new(params.threads as usize, params.partitions as usize)
            .with_broadcast_limit(params.broadcast_limit as usize),
    );
    let mut oracle_inputs = InputSet::new(ctx);
    oracle_inputs
        .add_nested("COP", cop_bag.clone())
        .map_err(|e| e.to_string())?;
    oracle_inputs
        .add_flat("Part", part_bag.clone())
        .map_err(|e| e.to_string())?;
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );

    coord
        .load_nested("COP", cop_bag)
        .map_err(|e| format!("loading COP: {e}"))?;
    coord
        .load_flat("Part", part_bag.into_items())
        .map_err(|e| format!("loading Part: {e}"))?;

    let mut outcomes = Vec::new();
    let mut cells: Vec<(String, Strategy, Option<DropSpec>)> = smoke_strategies()
        .into_iter()
        .map(|s| (s.label().to_string(), s, None))
        .collect();
    if let Some(drop) = chaos {
        cells.push((
            "chaos(STANDARD)".to_string(),
            Strategy::Standard,
            Some(drop),
        ));
    }

    for (label, strategy, drop) in cells {
        let oracle = run_query(&spec, &oracle_inputs, strategy);
        let oracle_bag = match &oracle.result {
            RunResult::Nested(coll) => coll.collect_bag(),
            other => return Err(format!("{label}: oracle produced {other:?}")),
        };

        let mut job = JobSpec::new(
            running_example(),
            vec![("COP".to_string(), cop_structure())],
            strategy,
        );
        job.chaos = drop;
        let started = Instant::now();
        let report = coord
            .run(&job)
            .map_err(|e| format!("{label}: distributed run failed: {e}"))?;
        let wall_ms = started.elapsed().as_millis();

        check_cell(
            &label,
            &oracle_bag,
            oracle.stats.shuffled_bytes,
            &report.rows,
            report.stats.shuffled_bytes,
        )?;
        if drop.is_some() && report.attempts < 2 {
            return Err(format!(
                "{label}: chaos drop did not force a retry (attempts = {})",
                report.attempts
            ));
        }
        outcomes.push(SmokeOutcome {
            label,
            rows: report.rows.items().len(),
            attempts: report.attempts,
            shuffled_bytes: report.stats.shuffled_bytes,
            wall_ms,
            oracle_wall_ms: oracle.elapsed.as_millis(),
        });
    }
    Ok(outcomes)
}

fn check_cell(
    label: &str,
    oracle_bag: &Bag,
    oracle_shuffled: u64,
    got_bag: &Bag,
    got_shuffled: u64,
) -> Result<(), String> {
    if !bags_approx_equal(oracle_bag, got_bag) {
        return Err(format!(
            "{label}: distributed result diverges from the in-process oracle \
             ({} vs {} rows)",
            got_bag.items().len(),
            oracle_bag.items().len()
        ));
    }
    if got_shuffled != oracle_shuffled {
        return Err(format!(
            "{label}: logical shuffle bytes diverge (distributed {got_shuffled}, \
             oracle {oracle_shuffled})"
        ));
    }
    Ok(())
}
