//! Test harness for true multi-process clusters: re-executes the current
//! binary as worker processes (an env var routes the child into
//! [`crate::worker::serve`]), so differential suites exercise real process
//! isolation and real sockets without needing pre-built binaries on PATH.

use std::io;
use std::process::{Child, Command, Stdio};

use crate::coordinator::{Coordinator, CoordinatorListener};
use crate::msg::ClusterParams;

/// A coordinator plus the worker child processes it controls.
#[derive(Debug)]
pub struct LocalCluster {
    /// The connected coordinator.
    pub coordinator: Coordinator,
    workers: Vec<Child>,
}

/// Spawns `ranks` copies of the current executable as workers and meshes
/// them under a freshly bound coordinator. Each child sees `env_var` set to
/// the coordinator address; the caller's `main` must check that variable
/// first and divert into [`crate::worker::serve`].
pub fn spawn_self_cluster(
    env_var: &str,
    ranks: usize,
    params: ClusterParams,
) -> io::Result<LocalCluster> {
    let listener = CoordinatorListener::bind("127.0.0.1:0", params)?;
    let addr = listener.local_addr()?;
    let exe = std::env::current_exe()?;
    let mut workers = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        workers.push(
            Command::new(&exe)
                .env(env_var, &addr)
                .stdin(Stdio::null())
                .spawn()?,
        );
    }
    let coordinator = listener.accept_workers(ranks)?;
    Ok(LocalCluster {
        coordinator,
        workers,
    })
}

impl LocalCluster {
    /// Orderly teardown: ask every worker to exit, then reap the children.
    pub fn shutdown(&mut self) {
        self.coordinator.shutdown();
        for child in &mut self.workers {
            let _ = child.wait();
        }
        self.workers.clear();
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        // If shutdown was skipped (a failing test), don't leak processes.
        for child in &mut self.workers {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}
