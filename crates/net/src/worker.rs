//! The worker process loop: connect to the coordinator, receive the cluster
//! shape and pre-partitioned inputs, then execute [`crate::msg::Ctrl::Run`]
//! attempts over the TCP data plane.
//!
//! Every rank drives the **same** deterministic `PlanProgram` the
//! single-process engine runs (the SPMD model): it owns a contiguous range
//! of partitions, keeps non-owned slots empty, and funnels every
//! cross-partition move through the [`crate::exchange::NetExchange`]
//! collectives installed on its [`DistContext`]. Cancellation arrives out of
//! band: a dedicated control reader fires the run's [`CancelToken`] the
//! moment a `Cancel` frame lands, without waiting for the run loop.

use std::collections::VecDeque;
use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use trance_compiler::{run_query_bounded, InputSet, QuerySpec, RunResult, Strategy};
use trance_dist::{CancelToken, ClusterConfig, DistContext};
use trance_frontend::parse_expr;
use trance_shred::ShreddedInputDecl;

use crate::exchange::DataPlane;
use crate::link::FramedConn;
use crate::msg::{Ctrl, ErrKind, LoadKind, NetStats, Outcome};

/// Result rows per [`Ctrl::Rows`] chunk, keeping control frames bounded.
const ROWS_PER_CHUNK: usize = 4096;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Inbound control messages, decoupled from the socket so `Cancel` can be
/// applied by the reader thread while a run is in flight.
#[derive(Default)]
struct MsgQueue {
    state: Mutex<(VecDeque<Ctrl>, bool)>,
    cond: Condvar,
}

impl MsgQueue {
    fn push(&self, msg: Ctrl) {
        lock(&self.state).0.push_back(msg);
        self.cond.notify_all();
    }

    fn close(&self) {
        lock(&self.state).1 = true;
        self.cond.notify_all();
    }

    /// Next message, or `None` once the control connection closed and the
    /// queue drained.
    fn pop(&self) -> Option<Ctrl> {
        let mut state = lock(&self.state);
        loop {
            if let Some(msg) = state.0.pop_front() {
                return Some(msg);
            }
            if state.1 {
                return None;
            }
            state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Connects to the coordinator and serves until `Shutdown` (or the control
/// connection closes). This is the whole body of the `trance-worker` binary.
pub fn serve(coordinator_addr: &str) -> io::Result<()> {
    let plane = DataPlane::bind()?;
    let conn = Arc::new(FramedConn::new(TcpStream::connect(coordinator_addr)?)?);
    conn.send(&Ctrl::Hello {
        data_addr: plane.addr().to_string(),
    })?;

    // The token of the run currently in flight, for out-of-band Cancel.
    let cancel_slot: Arc<Mutex<Option<CancelToken>>> = Arc::new(Mutex::new(None));
    let queue = Arc::new(MsgQueue::default());
    {
        let conn = conn.clone();
        let queue = queue.clone();
        let cancel_slot = cancel_slot.clone();
        thread::Builder::new()
            .name("trance-net-ctrl-rx".into())
            .spawn(move || loop {
                match conn.recv() {
                    Ok(Some(Ctrl::Cancel { reason, .. })) => {
                        if let Some(token) = lock(&cancel_slot).as_ref() {
                            token.cancel(&reason);
                        }
                    }
                    Ok(Some(msg)) => queue.push(msg),
                    Ok(None) | Err(_) => {
                        queue.close();
                        return;
                    }
                }
            })?;
    }

    // The cluster shape must arrive before anything else; every rank builds
    // the identical configuration or plans would diverge.
    let (rank, data_addrs, params) = match queue.pop() {
        Some(Ctrl::Peers {
            rank,
            data_addrs,
            params,
        }) => (rank as usize, data_addrs, params),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Peers as the first control message, got {other:?}"),
            ));
        }
    };
    let config = ClusterConfig::new(params.threads as usize, params.partitions as usize)
        .with_broadcast_limit(params.broadcast_limit as usize);
    let ctx = DistContext::new(config);
    let mut inputs = InputSet::new(ctx.clone());

    while let Some(msg) = queue.pop() {
        match msg {
            Ctrl::Load { kind, name, parts } => match kind {
                LoadKind::Flat => inputs.add_flat_partitioned(&name, parts),
                LoadKind::Nested => inputs.add_nested_partitioned(&name, parts),
                LoadKind::Shredded => inputs.add_shredded_partitioned(&name, parts),
            },
            Ctrl::Run {
                epoch,
                job,
                attempt,
                strategy,
                query,
                decls,
                deadline_ms,
                drop,
            } => {
                let run = RunRequest {
                    epoch,
                    strategy,
                    query,
                    decls,
                    deadline_ms,
                    drop,
                };
                let outcome =
                    match run_one(&plane, rank, &data_addrs, &ctx, &inputs, &cancel_slot, run) {
                        Ok((rows, stats)) => {
                            for chunk in rows.chunks(ROWS_PER_CHUNK.max(1)) {
                                conn.send(&Ctrl::Rows {
                                    job,
                                    attempt,
                                    rows: chunk.to_vec(),
                                })?;
                            }
                            Outcome::Ok(stats)
                        }
                        Err((kind, detail)) => Outcome::Err { kind, detail },
                    };
                conn.send(&Ctrl::Result {
                    job,
                    attempt,
                    outcome,
                })?;
            }
            Ctrl::Shutdown => break,
            // Hello/Peers/Rows/Result/Cancel are not expected here; ignore
            // rather than tearing the worker down mid-session.
            _ => {}
        }
    }
    Ok(())
}

struct RunRequest {
    epoch: u64,
    strategy: String,
    query: String,
    decls: Vec<(String, trance_shred::NestingStructure)>,
    deadline_ms: Option<u64>,
    drop: Option<crate::msg::DropSpec>,
}

fn run_one(
    plane: &DataPlane,
    rank: usize,
    data_addrs: &[String],
    ctx: &DistContext,
    inputs: &InputSet,
    cancel_slot: &Arc<Mutex<Option<CancelToken>>>,
    run: RunRequest,
) -> Result<(Vec<trance_nrc::Value>, NetStats), (ErrKind, String)> {
    let fatal = |detail: String| (ErrKind::Fatal, detail);

    let strategy = Strategy::from_label(&run.strategy)
        .ok_or_else(|| fatal(format!("unknown strategy label {:?}", run.strategy)))?;
    // Shredded-result strategies have no nested bag to ship back; the
    // coordinator protocol is nested-rows only.
    if strategy.is_shredded() && !strategy.unshreds() {
        return Err(fatal(format!(
            "strategy {} produces a shredded result; multi-node jobs must unshred",
            strategy.label()
        )));
    }
    let query = parse_expr(&run.query).map_err(|e| fatal(format!("bad query text: {e}")))?;
    let decls = run
        .decls
        .into_iter()
        .map(|(name, structure)| ShreddedInputDecl::new(name, structure))
        .collect();
    let spec = QuerySpec::new("dist-job", query, decls);

    // Fresh full mesh for this attempt; a failure to form it is transient
    // (a peer may still be tearing down its previous attempt).
    let mesh = plane
        .connect_mesh(run.epoch, rank, data_addrs)
        .map(Arc::new)
        .map_err(|e| (ErrKind::Retryable, format!("mesh formation failed: {e}")))?;
    if let Some(drop) = run.drop {
        if drop.victim as usize == rank {
            mesh.set_drop_after(drop.after_frames);
        }
    }
    let token = ctx.cancel_token();
    mesh.set_cancel(Some(token.clone()));
    *lock(cancel_slot) = Some(token);
    ctx.set_exchange(Some(mesh.clone()));

    let outcome = run_query_bounded(
        &spec,
        inputs,
        strategy,
        true,
        run.deadline_ms.map(Duration::from_millis),
    );

    ctx.set_exchange(None);
    *lock(cancel_slot) = None;
    mesh.set_cancel(None);
    mesh.close();
    if std::env::var_os("TRANCE_NET_DEBUG").is_some() {
        eprintln!(
            "trance-worker[{rank}]: {} collective rounds, result {}",
            mesh.rounds_issued(),
            match &outcome.result {
                RunResult::Nested(_) => "nested".to_string(),
                RunResult::Shredded(_) => "shredded".to_string(),
                RunResult::Failed(e) => format!("failed: {e}"),
            }
        );
    }

    match outcome.result {
        RunResult::Nested(coll) => {
            let rows = coll.collect_bag().into_items();
            Ok((rows, NetStats::from(&outcome.stats)))
        }
        RunResult::Shredded(_) => Err(fatal(
            "strategy unexpectedly produced a shredded result".into(),
        )),
        RunResult::Failed(e) => {
            let kind = if e.is_cancelled() {
                ErrKind::Cancelled
            } else if e.is_retryable() {
                ErrKind::Retryable
            } else {
                ErrKind::Fatal
            };
            Err((kind, e.to_string()))
        }
    }
}
