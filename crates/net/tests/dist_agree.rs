//! The multi-process differential suite: a real coordinator plus three
//! worker **processes** (re-executions of this test binary) on localhost
//! TCP, checked bag-for-bag — and logical-shuffle-byte-for-byte — against
//! the in-process thread backend, which stays the single-node oracle.
//!
//! Runs as a harness-less main so the same binary can serve as the worker
//! executable: the coordinator spawns `current_exe()` with
//! `TRANCE_NET_WORKER` set, and those children divert into
//! `worker::serve` before any test code runs.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_compiler::{run_query, InputSet, QuerySpec, RunResult, Strategy};
use trance_dist::{ClusterConfig, DistContext, ExecError};
use trance_net::coordinator::{Coordinator, JobSpec};
use trance_net::msg::{ClusterParams, DropSpec};
use trance_net::testkit::spawn_self_cluster;
use trance_nrc::Bag;
use trance_shred::ShreddedInputDecl;

#[path = "../../compiler/tests/common/mod.rs"]
mod common;
use common::{
    assert_bags_approx_eq, cop_structure, cop_value, env_u64, part_value, random_flat,
    random_nested, random_query, running_example, Watchdog,
};

const WORKER_ENV: &str = "TRANCE_NET_WORKER";
const RANKS: usize = 3;

fn params() -> ClusterParams {
    // The same deliberately hostile shape the in-process differential
    // suites use: more partitions than ranks, a tiny broadcast limit so
    // joins actually shuffle.
    ClusterParams {
        partitions: 8,
        threads: 2,
        broadcast_limit: 64,
    }
}

/// The in-process oracle context — identical shape to what every worker
/// process configures from [`params`].
fn oracle_ctx() -> DistContext {
    let p = params();
    DistContext::new(
        ClusterConfig::new(p.threads as usize, p.partitions as usize)
            .with_broadcast_limit(p.broadcast_limit as usize),
    )
}

/// Runs the oracle and returns its bag and logical shuffle bytes.
fn oracle_run(spec: &QuerySpec, inputs: &InputSet, strategy: Strategy) -> (Bag, u64) {
    let outcome = run_query(spec, inputs, strategy);
    match &outcome.result {
        RunResult::Nested(d) => (d.collect_bag(), outcome.stats.shuffled_bytes),
        other => panic!("oracle {} produced {other:?}", strategy.label()),
    }
}

fn check_job(
    coord: &mut Coordinator,
    label: &str,
    job: &JobSpec,
    oracle_bag: &Bag,
    oracle_shuffled: u64,
) -> u32 {
    let report = coord
        .run(job)
        .unwrap_or_else(|e| panic!("{label}: distributed run failed: {e}"));
    assert_bags_approx_eq(oracle_bag, &report.rows, label);
    assert_eq!(
        report.stats.shuffled_bytes, oracle_shuffled,
        "{label}: summed logical shuffle bytes diverge from the oracle"
    );
    report.attempts
}

fn running_example_agrees(coord: &mut Coordinator) {
    let cop = cop_value(40).as_bag().unwrap().clone();
    let part = part_value().as_bag().unwrap().clone();
    coord.load_nested("COP", cop.clone()).unwrap();
    coord.load_flat("Part", part.items().to_vec()).unwrap();

    let mut inputs = InputSet::new(oracle_ctx());
    inputs.add_nested("COP", cop).unwrap();
    inputs.add_flat("Part", part).unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );

    for strategy in [
        Strategy::Standard,
        Strategy::Baseline,
        Strategy::StandardSkew,
        Strategy::ShredUnshred,
        Strategy::ShredUnshredSkew,
    ] {
        let label = format!("running-example/{}", strategy.label());
        let (oracle_bag, oracle_shuffled) = oracle_run(&spec, &inputs, strategy);
        let job = JobSpec::new(
            running_example(),
            vec![("COP".to_string(), cop_structure())],
            strategy,
        );
        let attempts = check_job(coord, &label, &job, &oracle_bag, oracle_shuffled);
        assert_eq!(attempts, 1, "{label}: clean run needed retries");
        println!("ok {label}");
    }
}

fn random_programs_agree(coord: &mut Coordinator, base_seed: u64, programs: u64) {
    for i in 0..programs {
        let seed = base_seed.wrapping_add(i);
        let mut rng = StdRng::seed_from_u64(seed);
        let r_rows = rng.gen_range(10..50usize);
        let s_rows = rng.gen_range(10..40usize);
        let n_rows = rng.gen_range(5..25usize);
        let r = random_flat(&mut rng, r_rows, 8);
        let s = random_flat(&mut rng, s_rows, 8);
        let n = random_nested(&mut rng, n_rows, 8);
        let query = random_query(&mut rng);

        // Reloading under the same names replaces the previous program's
        // inputs on every rank.
        coord
            .load_flat("R", r.as_bag().unwrap().items().to_vec())
            .unwrap();
        coord
            .load_flat("S", s.as_bag().unwrap().items().to_vec())
            .unwrap();
        coord.load_nested("N", n.as_bag().unwrap().clone()).unwrap();

        let mut inputs = InputSet::new(oracle_ctx());
        inputs.add_flat("R", r.as_bag().unwrap().clone()).unwrap();
        inputs.add_flat("S", s.as_bag().unwrap().clone()).unwrap();
        inputs.add_nested("N", n.as_bag().unwrap().clone()).unwrap();
        let spec = QuerySpec::new(format!("random-{seed}"), query.clone(), vec![]);

        for strategy in [
            Strategy::Standard,
            Strategy::Baseline,
            Strategy::StandardSkew,
        ] {
            let label = format!("random-{seed}/{}", strategy.label());
            let (oracle_bag, oracle_shuffled) = oracle_run(&spec, &inputs, strategy);
            let job = JobSpec::new(query.clone(), vec![], strategy);
            check_job(coord, &label, &job, &oracle_bag, oracle_shuffled);
        }
        println!("ok random program seed {seed}");
    }
}

fn chaos_drop_recovers(coord: &mut Coordinator, seed: u64) {
    // Inputs for the running example are still loaded (the random programs
    // used different names); rerun it with a seeded connection drop.
    let cop = cop_value(40).as_bag().unwrap().clone();
    let part = part_value().as_bag().unwrap().clone();
    let mut inputs = InputSet::new(oracle_ctx());
    inputs.add_nested("COP", cop).unwrap();
    inputs.add_flat("Part", part).unwrap();
    let spec = QuerySpec::new(
        "running-example",
        running_example(),
        vec![ShreddedInputDecl::new("COP", cop_structure())],
    );
    let (oracle_bag, oracle_shuffled) = oracle_run(&spec, &inputs, Strategy::Standard);

    let drop = DropSpec {
        victim: (seed % RANKS as u64) as u32,
        after_frames: 2 + seed % 5,
    };
    println!(
        "chaos: rank {} severs its data link after {} frames (seed {seed})",
        drop.victim, drop.after_frames
    );
    let mut job = JobSpec::new(
        running_example(),
        vec![("COP".to_string(), cop_structure())],
        Strategy::Standard,
    );
    job.chaos = Some(drop);
    let attempts = check_job(coord, "chaos", &job, &oracle_bag, oracle_shuffled);
    assert!(
        attempts > 1,
        "chaos drop did not force a global retry (attempts = {attempts})"
    );
    println!("ok chaos: recovered to the oracle bag in {attempts} attempts");
}

fn deadline_cancels(coord: &mut Coordinator) {
    let mut job = JobSpec::new(
        running_example(),
        vec![("COP".to_string(), cop_structure())],
        Strategy::Standard,
    );
    job.deadline_ms = Some(0);
    match coord.run(&job) {
        Err(ExecError::Cancelled { .. }) => println!("ok cancellation: typed Cancelled"),
        other => panic!("expected Cancelled from a zero deadline, got {other:?}"),
    }
}

fn shredded_result_rejected(coord: &mut Coordinator) {
    let job = JobSpec::new(
        running_example(),
        vec![("COP".to_string(), cop_structure())],
        Strategy::Shred,
    );
    match coord.run(&job) {
        Err(ExecError::Other(detail)) => {
            assert!(
                detail.contains("shredded"),
                "unexpected rejection detail: {detail}"
            );
            println!("ok shredded-result strategy rejected as fatal");
        }
        other => panic!("expected a fatal rejection of Shred, got {other:?}"),
    }
}

fn main() {
    // Worker mode: the coordinator spawned us with the control address.
    if let Ok(addr) = std::env::var(WORKER_ENV) {
        if let Err(e) = trance_net::worker::serve(&addr) {
            eprintln!("dist_agree worker: {e}");
            std::process::exit(1);
        }
        return;
    }

    let _watchdog = Watchdog::arm("dist_agree", Duration::from_secs(600));
    let seed = env_u64("TRANCE_DIST_SEED", 0xD157);
    let programs = env_u64("TRANCE_DIST_PROGRAMS", 6);
    println!("dist_agree: {RANKS} worker processes, seed {seed}, {programs} random programs");

    let mut cluster =
        spawn_self_cluster(WORKER_ENV, RANKS, params()).expect("spawning worker processes");
    let coord = &mut cluster.coordinator;

    running_example_agrees(coord);
    random_programs_agree(coord, seed, programs);
    chaos_drop_recovers(coord, seed);
    deadline_cancels(coord);
    shredded_result_rejected(coord);

    cluster.shutdown();
    println!("dist_agree: all multi-process checks agree with the in-process oracle");
}
