//! Wire-format hardening over a **real socket**: valid control frames must
//! round-trip through localhost TCP, and fuzzed / bit-flipped / truncated /
//! length-forged frames arriving from the network must surface as typed
//! `InvalidData` errors — never a panic, never an allocation driven by a
//! forged length prefix.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::thread;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_net::link::FramedConn;
use trance_net::msg::{ClusterParams, Ctrl, DropSpec, LoadKind, MAX_NET_FRAME};
use trance_nrc::Value;
use trance_store::wire;

/// A connected localhost socket pair.
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = thread::spawn(move || TcpStream::connect(addr).unwrap());
    let (server, _) = listener.accept().unwrap();
    (client.join().unwrap(), server)
}

fn sample_messages() -> Vec<Ctrl> {
    vec![
        Ctrl::Hello {
            data_addr: "127.0.0.1:9999".into(),
        },
        Ctrl::Peers {
            rank: 1,
            data_addrs: vec!["a:1".into(), "b:2".into()],
            params: ClusterParams {
                partitions: 8,
                threads: 2,
                broadcast_limit: 64,
            },
        },
        Ctrl::Load {
            kind: LoadKind::Flat,
            name: "R".into(),
            parts: vec![vec![Value::Int(3), Value::str("x")], Vec::new()],
        },
        Ctrl::Run {
            epoch: 4,
            job: 2,
            attempt: 0,
            strategy: "STANDARD".into(),
            query: "for x in R union {( u := x.a )}".into(),
            decls: Vec::new(),
            deadline_ms: None,
            drop: Some(DropSpec {
                victim: 0,
                after_frames: 3,
            }),
        },
        Ctrl::Shutdown,
    ]
}

#[test]
fn control_frames_round_trip_over_tcp() {
    let (client, server) = socket_pair();
    let client = FramedConn::new(client).unwrap();
    let server = FramedConn::new(server).unwrap();
    let msgs = sample_messages();
    let sender = {
        let msgs = msgs.clone();
        thread::spawn(move || {
            for msg in &msgs {
                client.send(msg).unwrap();
            }
            client
        })
    };
    for expected in &msgs {
        let got = server.recv().unwrap().expect("stream closed early");
        assert_eq!(&got, expected);
    }
    drop(sender.join().unwrap());
    // Orderly close after the last message is a clean end-of-stream.
    assert!(server.recv().unwrap().is_none());
}

/// Writes `bytes` to a fresh socket and returns what the framed receiver
/// made of them. The writer closes immediately, so a decoder that survives
/// the corruption sees EOF next.
fn deliver(bytes: &[u8]) -> std::io::Result<Option<Ctrl>> {
    let (mut client, server) = socket_pair();
    let server = FramedConn::new(server).unwrap();
    client.write_all(bytes).unwrap();
    drop(client);
    server.recv()
}

#[test]
fn bit_flipped_frames_surface_typed_errors() {
    // One clean frame as the corpus; every single-bit corruption of it must
    // decode to an error or (if the flip lands in the payload of a frame
    // whose CRC then mismatches — always) never panic.
    let msg = Ctrl::Run {
        epoch: 1,
        job: 1,
        attempt: 0,
        strategy: "STANDARD".into(),
        query: "for x in R union {( u := x.a )}".into(),
        decls: Vec::new(),
        deadline_ms: Some(100),
        drop: None,
    };
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, 0x10, &msg.encode().unwrap()).unwrap();

    let mut rng = StdRng::seed_from_u64(0xF1A5);
    let mut cases = 0;
    let mut rejected = 0;
    for _ in 0..200 {
        let byte = rng.gen_range(0..frame.len());
        let bit = rng.gen_range(0..8u32);
        let mut corrupt = frame.clone();
        corrupt[byte] ^= 1 << bit;
        cases += 1;
        match deliver(&corrupt) {
            Err(_) => rejected += 1,
            Ok(None) => panic!("corrupt frame read as clean EOF"),
            Ok(Some(got)) => {
                // The only survivable flips would have to leave the CRC
                // consistent — a single bit flip never does.
                panic!("single-bit corruption decoded as {got:?}");
            }
        }
    }
    assert_eq!(cases, rejected, "every bit flip must be rejected");
}

#[test]
fn truncated_frames_error_cleanly() {
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, 0x10, &Ctrl::Shutdown.encode().unwrap()).unwrap();
    for cut in 1..frame.len() {
        let res = deliver(&frame[..cut]);
        assert!(
            res.is_err(),
            "truncation at byte {cut} must error, got {res:?}"
        );
    }
    // Zero bytes then close is the one legal degenerate stream.
    assert!(deliver(&[]).unwrap().is_none());
}

#[test]
fn forged_length_is_rejected_before_allocating() {
    // A header claiming a 4 GiB payload: the reader must refuse from the
    // header alone (the length exceeds the cap), not try to allocate it.
    let mut header = Vec::new();
    header.extend_from_slice(&wire::WIRE_MAGIC);
    header.extend_from_slice(&wire::WIRE_VERSION.to_le_bytes());
    header.push(0x10); // kind
    header.push(0); // flags
    header.extend_from_slice(&u32::MAX.to_le_bytes()); // forged length
    header.extend_from_slice(&0u32.to_le_bytes()); // bogus CRC
    assert_eq!(header.len(), wire::HEADER_LEN);
    let err = deliver(&header).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("exceeds"),
        "expected a length-cap rejection, got: {err}"
    );

    // A length under the cap but far beyond what the stream delivers must
    // also fail on the short read, with allocation bounded by arrival.
    let mut sneaky = Vec::new();
    sneaky.extend_from_slice(&wire::WIRE_MAGIC);
    sneaky.extend_from_slice(&wire::WIRE_VERSION.to_le_bytes());
    sneaky.push(0x10);
    sneaky.push(0);
    sneaky.extend_from_slice(&(MAX_NET_FRAME as u32 - 1).to_le_bytes());
    sneaky.extend_from_slice(&0u32.to_le_bytes());
    sneaky.extend_from_slice(b"just a few actual bytes");
    assert!(deliver(&sneaky).is_err());
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xBADF00D);
    for _ in 0..200 {
        let len = rng.gen_range(0..256usize);
        let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
        // Random bytes essentially never form a valid magic + CRC; either
        // way the decoder must return, not panic or hang.
        let _ = deliver(&junk);
    }
}

#[test]
fn data_frame_corruption_marks_link_not_process() {
    // The data-plane encoder is exposed for exactly this: corrupting a
    // shuffle frame's payload must fail the CRC at the wire layer.
    let frame = trance_net::exchange::encode_data_frame(7, 1, b"piece-bytes").unwrap();
    let mut corrupt = frame.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    assert!(deliver(&corrupt).is_err());
    // And the pristine frame is a valid wire frame (wrong kind for the
    // control plane, so the framed receiver rejects it with a typed error
    // rather than misreading it as a control message).
    let err = deliver(&frame).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("expected control frame"));
}
