//! Ergonomic constructors for NRC expressions.
//!
//! Writing deeply nested [`Expr`] values by hand is verbose; these helpers
//! keep query definitions (examples, benchmarks, tests) close to the surface
//! syntax used in the paper, e.g.
//!
//! ```
//! use trance_nrc::builder::*;
//! // for c in COP union { <cname := c.cname> }
//! let q = forin("c", var("COP"), singleton(tuple([("cname", proj(var("c"), "cname"))])));
//! assert_eq!(q.free_vars().len(), 1);
//! ```

use crate::expr::{CmpOp, Expr, PrimOp};
use crate::types::Type;
use crate::value::Value;

/// A variable reference.
pub fn var(name: impl Into<String>) -> Expr {
    Expr::Var(name.into())
}

/// A scalar constant.
pub fn cst(v: Value) -> Expr {
    Expr::Const(v)
}

/// An integer constant.
pub fn int(i: i64) -> Expr {
    Expr::Const(Value::Int(i))
}

/// A real constant.
pub fn real(r: f64) -> Expr {
    Expr::Const(Value::Real(r))
}

/// A string constant.
pub fn string(s: impl Into<String>) -> Expr {
    Expr::Const(Value::Str(s.into()))
}

/// A boolean constant.
pub fn boolean(b: bool) -> Expr {
    Expr::Const(Value::Bool(b))
}

/// Tuple projection `e.field`.
pub fn proj(tuple: Expr, field: impl Into<String>) -> Expr {
    Expr::Proj {
        tuple: Box::new(tuple),
        field: field.into(),
    }
}

/// Projection of a chain of fields `e.f1.f2…`.
pub fn proj_path(mut tuple: Expr, fields: &[&str]) -> Expr {
    for f in fields {
        tuple = proj(tuple, *f);
    }
    tuple
}

/// Tuple construction.
pub fn tuple<I, S>(fields: I) -> Expr
where
    I: IntoIterator<Item = (S, Expr)>,
    S: Into<String>,
{
    Expr::Tuple(fields.into_iter().map(|(n, e)| (n.into(), e)).collect())
}

/// The empty bag with unknown element type.
pub fn empty_bag() -> Expr {
    Expr::EmptyBag(None)
}

/// The empty bag annotated with an element type.
pub fn empty_bag_of(t: Type) -> Expr {
    Expr::EmptyBag(Some(t))
}

/// Singleton bag `{e}`.
pub fn singleton(e: Expr) -> Expr {
    Expr::Singleton(Box::new(e))
}

/// `get(e)`.
pub fn get(e: Expr) -> Expr {
    Expr::Get(Box::new(e))
}

/// `for var in source union body`.
pub fn forin(v: impl Into<String>, source: Expr, body: Expr) -> Expr {
    Expr::For {
        var: v.into(),
        source: Box::new(source),
        body: Box::new(body),
    }
}

/// Bag union `a ⊎ b`.
pub fn union(a: Expr, b: Expr) -> Expr {
    Expr::Union(Box::new(a), Box::new(b))
}

/// `let var := value in body`.
pub fn letin(v: impl Into<String>, value: Expr, body: Expr) -> Expr {
    Expr::Let {
        var: v.into(),
        value: Box::new(value),
        body: Box::new(body),
    }
}

/// `if cond then e` (bag-typed, empty bag otherwise).
pub fn ifthen(cond: Expr, then_branch: Expr) -> Expr {
    Expr::If {
        cond: Box::new(cond),
        then_branch: Box::new(then_branch),
        else_branch: None,
    }
}

/// `if cond then e1 else e2`.
pub fn ifelse(cond: Expr, then_branch: Expr, else_branch: Expr) -> Expr {
    Expr::If {
        cond: Box::new(cond),
        then_branch: Box::new(then_branch),
        else_branch: Some(Box::new(else_branch)),
    }
}

fn prim(op: PrimOp, l: Expr, r: Expr) -> Expr {
    Expr::Prim {
        op,
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// Addition.
pub fn add(l: Expr, r: Expr) -> Expr {
    prim(PrimOp::Add, l, r)
}
/// Subtraction.
pub fn sub(l: Expr, r: Expr) -> Expr {
    prim(PrimOp::Sub, l, r)
}
/// Multiplication.
pub fn mul(l: Expr, r: Expr) -> Expr {
    prim(PrimOp::Mul, l, r)
}
/// Division.
pub fn div(l: Expr, r: Expr) -> Expr {
    prim(PrimOp::Div, l, r)
}

fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
    Expr::Cmp {
        op,
        left: Box::new(l),
        right: Box::new(r),
    }
}

/// Equality comparison.
pub fn cmp_eq(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Eq, l, r)
}
/// Inequality comparison.
pub fn cmp_ne(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Ne, l, r)
}
/// Less-than comparison.
pub fn cmp_lt(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Lt, l, r)
}
/// Less-or-equal comparison.
pub fn cmp_le(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Le, l, r)
}
/// Greater-than comparison.
pub fn cmp_gt(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Gt, l, r)
}
/// Greater-or-equal comparison.
pub fn cmp_ge(l: Expr, r: Expr) -> Expr {
    cmp(CmpOp::Ge, l, r)
}

/// Boolean conjunction.
pub fn and(l: Expr, r: Expr) -> Expr {
    Expr::And(Box::new(l), Box::new(r))
}
/// Boolean disjunction.
pub fn or(l: Expr, r: Expr) -> Expr {
    Expr::Or(Box::new(l), Box::new(r))
}
/// Boolean negation.
pub fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

/// `dedup(e)`.
pub fn dedup(e: Expr) -> Expr {
    Expr::Dedup(Box::new(e))
}

/// `groupBy_key(e)` collecting non-key attributes into `group_attr`.
pub fn group_by(input: Expr, key: &[&str], group_attr: impl Into<String>) -> Expr {
    Expr::GroupBy {
        input: Box::new(input),
        key: key.iter().map(|s| s.to_string()).collect(),
        group_attr: group_attr.into(),
    }
}

/// `sumBy^values_key(e)`.
pub fn sum_by(input: Expr, key: &[&str], values: &[&str]) -> Expr {
    Expr::SumBy {
        input: Box::new(input),
        key: key.iter().map(|s| s.to_string()).collect(),
        values: values.iter().map(|s| s.to_string()).collect(),
    }
}

/// `NewLabel` capturing the given `(name, expr)` pairs at construction site
/// `site`.
pub fn new_label<I, S>(site: u32, captures: I) -> Expr
where
    I: IntoIterator<Item = (S, Expr)>,
    S: Into<String>,
{
    Expr::NewLabel {
        site,
        captures: captures.into_iter().map(|(n, e)| (n.into(), e)).collect(),
    }
}

/// `match label = NewLabel(params…) then body`.
pub fn match_label(label: Expr, site: u32, params: &[&str], body: Expr) -> Expr {
    Expr::MatchLabel {
        label: Box::new(label),
        site,
        params: params.iter().map(|s| s.to_string()).collect(),
        body: Box::new(body),
    }
}

/// Symbolic dictionary lookup (shredding intermediate form).
pub fn lookup(dict: Expr, label: Expr) -> Expr {
    Expr::Lookup {
        dict: Box::new(dict),
        label: Box::new(label),
    }
}

/// Materialized dictionary lookup.
pub fn mat_lookup(dict: Expr, label: Expr) -> Expr {
    Expr::MatLookup {
        dict: Box::new(dict),
        label: Box::new(label),
    }
}

/// λ-abstraction over a label parameter.
pub fn lambda(param: impl Into<String>, body: Expr) -> Expr {
    Expr::Lambda {
        param: param.into(),
        body: Box::new(body),
    }
}

/// `BagToDict(e)`.
pub fn bag_to_dict(e: Expr) -> Expr {
    Expr::BagToDict(Box::new(e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = sum_by(
            forin(
                "op",
                proj(var("co"), "oparts"),
                forin(
                    "p",
                    var("Part"),
                    ifthen(
                        cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                        singleton(tuple([
                            ("pname", proj(var("p"), "pname")),
                            (
                                "total",
                                mul(proj(var("op"), "qty"), proj(var("p"), "price")),
                            ),
                        ])),
                    ),
                ),
            ),
            &["pname"],
            &["total"],
        );
        match &e {
            Expr::SumBy { key, values, .. } => {
                assert_eq!(key, &vec!["pname".to_string()]);
                assert_eq!(values, &vec!["total".to_string()]);
            }
            _ => panic!("expected SumBy"),
        }
        assert_eq!(e.free_vars().len(), 2); // co, Part
    }

    #[test]
    fn proj_path_chains_projections() {
        let e = proj_path(var("x"), &["a", "b", "c"]);
        assert_eq!(e, proj(proj(proj(var("x"), "a"), "b"), "c"));
    }
}
