//! Result comparison for distributed and out-of-core runs: canonical
//! (multiset) ordering and float-tolerant equality.
//!
//! Bags are multisets, so two correct executions may emit the same result in
//! different element orders — distribution, skew splitting and spilling all
//! reorder. [`canonical_rows`] sorts bags (and tuple fields) recursively so
//! results compare deterministically, and [`approx_eq`] tolerates the
//! last-ulp differences that reordering real-number summation introduces.
//! One definition serves the differential test suites and the benchmark
//! harness's oracle checks, so the two can never drift apart.

use crate::value::{Bag, Value};

/// Canonicalizes a bag for comparison: bags sort recursively and tuple
/// fields sort by attribute name, so any two multiset-equal results
/// canonicalize identically regardless of emission or field order.
pub fn canonical_rows(bag: &Bag) -> Vec<Value> {
    fn canon(v: &Value) -> Value {
        match v {
            Value::Bag(b) => {
                let mut items: Vec<Value> = b.iter().map(canon).collect();
                items.sort();
                Value::Bag(Bag::new(items))
            }
            Value::Tuple(t) => {
                let mut fields: Vec<(String, Value)> =
                    t.iter().map(|(n, v)| (n.to_string(), canon(v))).collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Tuple(crate::value::Tuple::new(fields))
            }
            other => other.clone(),
        }
    }
    let mut items: Vec<Value> = bag.iter().map(canon).collect();
    items.sort();
    items
}

/// Approximate value equality: distributed aggregation sums reals in a
/// different order than a sequential run, so grouped totals may differ in
/// the last ulp (relative tolerance `1e-9`). Everything except reals must
/// match exactly.
pub fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Real(x), Value::Real(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        (Value::Tuple(x), Value::Tuple(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((nx, vx), (ny, vy))| nx == ny && approx_eq(vx, vy))
        }
        (Value::Bag(x), Value::Bag(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(vx, vy)| approx_eq(vx, vy))
        }
        _ => a == b,
    }
}

/// True when the two bags are multiset-equal up to float tolerance
/// (canonicalize, then compare pairwise with [`approx_eq`]).
pub fn bags_approx_equal(a: &Bag, b: &Bag) -> bool {
    let ca = canonical_rows(a);
    let cb = canonical_rows(b);
    ca.len() == cb.len() && ca.iter().zip(&cb).all(|(x, y)| approx_eq(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordered_bags_and_fields_canonicalize_equal() {
        let a = Bag::new(vec![
            Value::tuple([("x", Value::Int(1)), ("y", Value::Int(2))]),
            Value::tuple([("x", Value::Int(3)), ("y", Value::Int(4))]),
        ]);
        let b = Bag::new(vec![
            Value::tuple([("y", Value::Int(4)), ("x", Value::Int(3))]),
            Value::tuple([("y", Value::Int(2)), ("x", Value::Int(1))]),
        ]);
        assert!(bags_approx_equal(&a, &b));
    }

    #[test]
    fn float_summation_order_is_tolerated_but_real_differences_are_not() {
        let a = Bag::new(vec![Value::Real(1.0)]);
        let b = Bag::new(vec![Value::Real(1.0 + 1e-12)]);
        let c = Bag::new(vec![Value::Real(1.1)]);
        assert!(bags_approx_equal(&a, &b));
        assert!(!bags_approx_equal(&a, &c));
    }
}
