//! Error types shared by the NRC front end.

use std::fmt;

/// Errors raised while type checking or evaluating NRC expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NrcError {
    /// A variable was referenced but is not bound in the environment.
    UnboundVariable(String),
    /// A tuple projection referenced a field that does not exist.
    UnknownField {
        /// The missing attribute name.
        field: String,
        /// Where the access happened.
        context: String,
    },
    /// An operation received a value of an unexpected kind.
    TypeMismatch {
        /// The kind the operation needed.
        expected: String,
        /// The kind it received.
        found: String,
        /// Where the mismatch happened.
        context: String,
    },
    /// `get` was applied to a bag that is empty or has more than one element
    /// and no default could be produced.
    GetOnNonSingleton {
        /// Number of elements in the bag.
        size: usize,
    },
    /// A label was deconstructed against a `NewLabel` site it did not come from.
    LabelSiteMismatch {
        /// The site the match expected.
        expected: u32,
        /// The site the label was built at.
        found: u32,
    },
    /// Division by zero during evaluation.
    DivisionByZero,
    /// A construct that only exists in the symbolic shredding phase
    /// (λ-abstractions, symbolic `Lookup`) reached the evaluator.
    SymbolicConstruct(&'static str),
    /// Anything else.
    Other(String),
}

impl fmt::Display for NrcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NrcError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            NrcError::UnknownField { field, context } => {
                write!(f, "unknown field `{field}` in {context}")
            }
            NrcError::TypeMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            NrcError::GetOnNonSingleton { size } => {
                write!(f, "get() applied to a bag with {size} elements")
            }
            NrcError::LabelSiteMismatch { expected, found } => {
                write!(f, "label site mismatch: expected {expected}, found {found}")
            }
            NrcError::DivisionByZero => write!(f, "division by zero"),
            NrcError::SymbolicConstruct(c) => {
                write!(f, "symbolic construct `{c}` cannot be evaluated directly")
            }
            NrcError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for NrcError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NrcError>;
