//! A reference, single-node evaluator for NRC programs.
//!
//! The evaluator defines the semantics every compilation route must agree
//! with: integration tests compare the output of the distributed standard and
//! shredded pipelines against this evaluator on the same inputs.
//!
//! The symbolic-only constructs of NRC^{Lbl+λ} (λ-abstraction and symbolic
//! `Lookup`) are rejected: they only exist between the shredding and
//! materialization phases and are never executed.

use std::collections::{BTreeMap, HashMap};

use crate::error::{NrcError, Result};
use crate::expr::{Expr, PrimOp};
use crate::value::{Bag, Label, Tuple, Value};

/// A variable binding environment.
#[derive(Debug, Clone, Default)]
pub struct Env {
    bindings: HashMap<String, Value>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Creates an environment from `(name, value)` pairs.
    pub fn from_bindings<I, S>(bindings: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Env {
            bindings: bindings.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        self.bindings.insert(name.into(), value);
    }

    /// Looks up `name`.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.bindings.get(name)
    }

    /// Looks up `name` or fails with [`NrcError::UnboundVariable`].
    pub fn get_or_err(&self, name: &str) -> Result<&Value> {
        self.get(name)
            .ok_or_else(|| NrcError::UnboundVariable(name.to_string()))
    }

    /// Names bound in this environment.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.bindings.keys().map(|s| s.as_str())
    }
}

/// Evaluates `expr` under `env`.
pub fn eval(expr: &Expr, env: &Env) -> Result<Value> {
    Evaluator::default().eval(expr, env)
}

/// The evaluator. Stateless apart from configuration; kept as a struct so
/// evaluation options (e.g. strictness of `get`) can be added without
/// breaking the public `eval` function.
#[derive(Debug, Default, Clone)]
pub struct Evaluator {
    /// When true, `get` on a non-singleton bag is an error instead of
    /// returning a default value.
    pub strict_get: bool,
}

impl Evaluator {
    /// Evaluates `expr` under `env`.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Value> {
        match expr {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(name) => env.get_or_err(name).cloned(),
            Expr::Proj { tuple, field } => {
                let v = self.eval(tuple, env)?;
                match v {
                    // NULL propagates through projections (outer-join semantics).
                    Value::Null => Ok(Value::Null),
                    Value::Tuple(t) => t.get_or_err(field, "projection").cloned(),
                    other => Err(NrcError::TypeMismatch {
                        expected: "tuple".into(),
                        found: other.kind().into(),
                        context: format!("projection .{field}"),
                    }),
                }
            }
            Expr::Tuple(fields) => {
                let mut t = Tuple::empty();
                for (n, e) in fields {
                    t.set(n.clone(), self.eval(e, env)?);
                }
                Ok(Value::Tuple(t))
            }
            Expr::EmptyBag(_) => Ok(Value::empty_bag()),
            Expr::Singleton(e) => Ok(Value::Bag(Bag::singleton(self.eval(e, env)?))),
            Expr::Get(e) => {
                let bag = self.eval(e, env)?.into_bag()?;
                match bag.len() {
                    1 => Ok(bag.into_items().pop().unwrap()),
                    n if self.strict_get => Err(NrcError::GetOnNonSingleton { size: n }),
                    _ => Ok(bag.into_items().into_iter().next().unwrap_or(Value::Null)),
                }
            }
            Expr::For { var, source, body } => {
                let src = self.eval(source, env)?.into_bag()?;
                let mut out = Bag::empty();
                let mut inner_env = env.clone();
                for item in src {
                    inner_env.bind(var.clone(), item);
                    out.extend(self.eval(body, &inner_env)?.into_bag()?);
                }
                Ok(Value::Bag(out))
            }
            Expr::Union(a, b) => {
                let mut left = self.eval(a, env)?.into_bag()?;
                left.extend(self.eval(b, env)?.into_bag()?);
                Ok(Value::Bag(left))
            }
            Expr::Let { var, value, body } => {
                let v = self.eval(value, env)?;
                let mut inner = env.clone();
                inner.bind(var.clone(), v);
                self.eval(body, &inner)
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond, env)?.as_bool()? {
                    self.eval(then_branch, env)
                } else if let Some(e) = else_branch {
                    self.eval(e, env)
                } else {
                    Ok(Value::empty_bag())
                }
            }
            Expr::Prim { op, left, right } => {
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                self.eval_prim(*op, &l, &r)
            }
            Expr::Cmp { op, left, right } => {
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                Ok(Value::Bool(op.eval(l.cmp(&r))))
            }
            Expr::And(a, b) => Ok(Value::Bool(
                self.eval(a, env)?.as_bool()? && self.eval(b, env)?.as_bool()?,
            )),
            Expr::Or(a, b) => Ok(Value::Bool(
                self.eval(a, env)?.as_bool()? || self.eval(b, env)?.as_bool()?,
            )),
            Expr::Not(e) => Ok(Value::Bool(!self.eval(e, env)?.as_bool()?)),
            Expr::Dedup(e) => {
                let bag = self.eval(e, env)?.into_bag()?;
                let mut seen = BTreeMap::new();
                for v in bag {
                    seen.entry(v).or_insert(());
                }
                Ok(Value::Bag(seen.into_keys().collect()))
            }
            Expr::GroupBy {
                input,
                key,
                group_attr,
            } => {
                let bag = self.eval(input, env)?.into_bag()?;
                self.eval_group_by(bag, key, group_attr)
            }
            Expr::SumBy { input, key, values } => {
                let bag = self.eval(input, env)?.into_bag()?;
                self.eval_sum_by(bag, key, values)
            }
            Expr::NewLabel { site, captures } => {
                let mut vals = Vec::with_capacity(captures.len());
                for (_, e) in captures {
                    vals.push(self.eval(e, env)?);
                }
                Ok(Value::Label(Label::new(*site, vals)))
            }
            Expr::MatchLabel {
                label,
                site,
                params,
                body,
            } => {
                let l = self.eval(label, env)?;
                let l = l.as_label()?;
                if l.site != *site {
                    // A label from a different construction site: the match
                    // yields the empty bag, per the NRC^{Lbl+λ} semantics.
                    return Ok(Value::empty_bag());
                }
                let mut inner = env.clone();
                for (i, p) in params.iter().enumerate() {
                    inner.bind(p.clone(), l.values.get(i).cloned().unwrap_or(Value::Null));
                }
                self.eval(body, &inner)
            }
            Expr::Lambda { .. } => Err(NrcError::SymbolicConstruct("lambda")),
            Expr::Lookup { .. } => Err(NrcError::SymbolicConstruct("Lookup")),
            Expr::MatLookup { dict, label } => {
                let dict = self.eval(dict, env)?.into_bag()?;
                let target = self.eval(label, env)?;
                let mut out = Bag::empty();
                for entry in dict.iter() {
                    let t = entry.as_tuple()?;
                    if t.get_or_err("label", "MatLookup")? == &target {
                        out.extend(t.get_or_err("value", "MatLookup")?.clone().into_bag()?);
                    }
                }
                Ok(Value::Bag(out))
            }
            Expr::DictTreeUnion(a, b) => {
                // Dictionary trees are tuples of (a_fun, a_child) attributes;
                // their union merges the corresponding bags attribute-wise.
                let va = self.eval(a, env)?;
                let vb = self.eval(b, env)?;
                union_dict_trees(&va, &vb)
            }
            Expr::BagToDict(e) => self.eval(e, env),
        }
    }

    fn eval_prim(&self, op: PrimOp, l: &Value, r: &Value) -> Result<Value> {
        // Integer arithmetic stays integral except for division.
        match (op, l, r) {
            (PrimOp::Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
            (PrimOp::Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a - b)),
            (PrimOp::Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a * b)),
            (PrimOp::Div, _, _) => {
                let d = r.as_real()?;
                if d == 0.0 {
                    return Err(NrcError::DivisionByZero);
                }
                Ok(Value::Real(l.as_real()? / d))
            }
            _ => {
                let a = l.as_real()?;
                let b = r.as_real()?;
                Ok(Value::Real(match op {
                    PrimOp::Add => a + b,
                    PrimOp::Sub => a - b,
                    PrimOp::Mul => a * b,
                    PrimOp::Div => unreachable!("handled above"),
                }))
            }
        }
    }

    fn eval_group_by(&self, bag: Bag, key: &[String], group_attr: &str) -> Result<Value> {
        let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
        let mut groups: BTreeMap<Tuple, Bag> = BTreeMap::new();
        for item in bag {
            let t = item.as_tuple()?.clone();
            let k = t.project(&key_refs);
            let rest = t.project_away(&key_refs);
            groups
                .entry(k)
                .or_insert_with(Bag::empty)
                .push(Value::Tuple(rest));
        }
        let mut out = Bag::empty();
        for (k, group) in groups {
            let mut row = k;
            row.set(group_attr.to_string(), Value::Bag(group));
            out.push(Value::Tuple(row));
        }
        Ok(Value::Bag(out))
    }

    fn eval_sum_by(&self, bag: Bag, key: &[String], values: &[String]) -> Result<Value> {
        let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
        let mut groups: BTreeMap<Tuple, Vec<Value>> = BTreeMap::new();
        for item in bag {
            let t = item.as_tuple()?.clone();
            let k = t.project(&key_refs);
            let entry = groups
                .entry(k)
                .or_insert_with(|| vec![Value::Null; values.len()]);
            for (i, vname) in values.iter().enumerate() {
                let v = t.get_or_err(vname, "sumBy")?;
                entry[i] = entry[i].numeric_add(v)?;
            }
        }
        let mut out = Bag::empty();
        for (k, sums) in groups {
            let mut row = k;
            for (vname, sum) in values.iter().zip(sums) {
                let sum = if matches!(sum, Value::Null) {
                    Value::Int(0)
                } else {
                    sum
                };
                row.set(vname.clone(), sum);
            }
            out.push(Value::Tuple(row));
        }
        Ok(Value::Bag(out))
    }
}

fn union_dict_trees(a: &Value, b: &Value) -> Result<Value> {
    match (a, b) {
        (Value::Tuple(ta), Value::Tuple(tb)) => {
            let mut out = Tuple::empty();
            for (name, va) in ta.iter() {
                match tb.get(name) {
                    Some(vb) => out.set(name.to_string(), union_dict_trees(va, vb)?),
                    None => out.set(name.to_string(), va.clone()),
                }
            }
            for (name, vb) in tb.iter() {
                if ta.get(name).is_none() {
                    out.set(name.to_string(), vb.clone());
                }
            }
            Ok(Value::Tuple(out))
        }
        (Value::Bag(ba), Value::Bag(bb)) => {
            let mut out = ba.clone();
            out.extend(bb.clone());
            Ok(Value::Bag(out))
        }
        _ => Ok(a.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn part_bag() -> Value {
        Value::bag(vec![
            Value::tuple([
                ("pid", Value::Int(1)),
                ("pname", Value::str("bolt")),
                ("price", Value::Real(2.0)),
            ]),
            Value::tuple([
                ("pid", Value::Int(2)),
                ("pname", Value::str("nut")),
                ("price", Value::Real(0.5)),
            ]),
        ])
    }

    #[test]
    fn for_union_flattens_bags() {
        let env = Env::from_bindings([("R", Value::bag(vec![Value::Int(1), Value::Int(2)]))]);
        let e = forin("x", var("R"), singleton(add(var("x"), int(10))));
        let out = eval(&e, &env).unwrap();
        assert_eq!(out, Value::bag(vec![Value::Int(11), Value::Int(12)]));
    }

    #[test]
    fn if_without_else_yields_empty_bag() {
        let env = Env::from_bindings([("P", part_bag())]);
        let e = forin(
            "p",
            var("P"),
            ifthen(
                cmp_eq(proj(var("p"), "pid"), int(1)),
                singleton(proj(var("p"), "pname")),
            ),
        );
        let out = eval(&e, &env).unwrap();
        assert_eq!(out, Value::bag(vec![Value::str("bolt")]));
    }

    #[test]
    fn group_by_collects_non_key_attributes() {
        let data = Value::bag(vec![
            Value::tuple([("k", Value::Int(1)), ("v", Value::Int(10))]),
            Value::tuple([("k", Value::Int(1)), ("v", Value::Int(20))]),
            Value::tuple([("k", Value::Int(2)), ("v", Value::Int(30))]),
        ]);
        let env = Env::from_bindings([("R", data)]);
        let out = eval(&group_by(var("R"), &["k"], "group"), &env).unwrap();
        let bag = out.as_bag().unwrap();
        assert_eq!(bag.len(), 2);
        let first = bag.items()[0].as_tuple().unwrap();
        assert_eq!(first.get("k"), Some(&Value::Int(1)));
        assert_eq!(first.get("group").unwrap().as_bag().unwrap().len(), 2);
    }

    #[test]
    fn sum_by_sums_value_attributes_per_key() {
        let data = Value::bag(vec![
            Value::tuple([("name", Value::str("a")), ("total", Value::Real(1.5))]),
            Value::tuple([("name", Value::str("a")), ("total", Value::Real(2.5))]),
            Value::tuple([("name", Value::str("b")), ("total", Value::Real(4.0))]),
        ]);
        let env = Env::from_bindings([("R", data)]);
        let out = eval(&sum_by(var("R"), &["name"], &["total"]), &env).unwrap();
        let bag = out.as_bag().unwrap();
        assert_eq!(bag.len(), 2);
        let a = bag
            .iter()
            .find(|v| v.as_tuple().unwrap().get("name") == Some(&Value::str("a")))
            .unwrap();
        assert_eq!(a.as_tuple().unwrap().get("total"), Some(&Value::Real(4.0)));
    }

    #[test]
    fn dedup_resets_multiplicities() {
        let data = Value::bag(vec![Value::Int(1), Value::Int(1), Value::Int(2)]);
        let env = Env::from_bindings([("R", data)]);
        let out = eval(&dedup(var("R")), &env).unwrap();
        assert_eq!(out.as_bag().unwrap().len(), 2);
    }

    #[test]
    fn labels_round_trip_through_match() {
        // let l := NewLabel(k := 7) in match l = NewLabel(k) then {<key := k>}
        let e = letin(
            "l",
            new_label(3, [("k", int(7))]),
            match_label(var("l"), 3, &["k"], singleton(tuple([("key", var("k"))]))),
        );
        let out = eval(&e, &Env::new()).unwrap();
        assert_eq!(
            out,
            Value::bag(vec![Value::tuple([("key", Value::Int(7))])])
        );
        // Matching against the wrong site yields the empty bag.
        let wrong = letin(
            "l",
            new_label(3, [("k", int(7))]),
            match_label(var("l"), 4, &["k"], singleton(var("k"))),
        );
        assert_eq!(eval(&wrong, &Env::new()).unwrap(), Value::empty_bag());
    }

    #[test]
    fn mat_lookup_finds_value_bag_by_label() {
        let lbl = Value::Label(Label::new(1, vec![Value::Int(42)]));
        let dict = Value::bag(vec![Value::tuple([
            ("label", lbl.clone()),
            ("value", Value::bag(vec![Value::Int(9)])),
        ])]);
        let env = Env::from_bindings([("D", dict), ("l", lbl)]);
        let out = eval(&mat_lookup(var("D"), var("l")), &env).unwrap();
        assert_eq!(out, Value::bag(vec![Value::Int(9)]));
        // Absent label -> empty bag.
        let env2 = Env::from_bindings([
            ("D", Value::empty_bag()),
            ("l", Value::Label(Label::new(1, vec![Value::Int(1)]))),
        ]);
        assert_eq!(
            eval(&mat_lookup(var("D"), var("l")), &env2).unwrap(),
            Value::empty_bag()
        );
    }

    #[test]
    fn symbolic_constructs_are_rejected() {
        let e = lambda("l", singleton(var("l")));
        assert!(matches!(
            eval(&e, &Env::new()),
            Err(NrcError::SymbolicConstruct(_))
        ));
    }

    #[test]
    fn null_projection_propagates() {
        let env = Env::from_bindings([("x", Value::Null)]);
        assert_eq!(eval(&proj(var("x"), "a"), &env).unwrap(), Value::Null);
    }

    #[test]
    fn running_example_evaluates_locally() {
        // Example 1 from the paper, on a tiny COP / Part instance.
        let cop = Value::bag(vec![Value::tuple([
            ("cname", Value::str("alice")),
            (
                "corders",
                Value::bag(vec![Value::tuple([
                    ("odate", Value::Date(100)),
                    (
                        "oparts",
                        Value::bag(vec![
                            Value::tuple([("pid", Value::Int(1)), ("qty", Value::Real(3.0))]),
                            Value::tuple([("pid", Value::Int(2)), ("qty", Value::Real(2.0))]),
                        ]),
                    ),
                ])]),
            ),
        ])]);
        let env = Env::from_bindings([("COP", cop), ("Part", part_bag())]);
        let q = forin(
            "cop",
            var("COP"),
            singleton(tuple([
                ("cname", proj(var("cop"), "cname")),
                (
                    "corders",
                    forin(
                        "co",
                        proj(var("cop"), "corders"),
                        singleton(tuple([
                            ("odate", proj(var("co"), "odate")),
                            (
                                "oparts",
                                sum_by(
                                    forin(
                                        "op",
                                        proj(var("co"), "oparts"),
                                        forin(
                                            "p",
                                            var("Part"),
                                            ifthen(
                                                cmp_eq(
                                                    proj(var("op"), "pid"),
                                                    proj(var("p"), "pid"),
                                                ),
                                                singleton(tuple([
                                                    ("pname", proj(var("p"), "pname")),
                                                    (
                                                        "total",
                                                        mul(
                                                            proj(var("op"), "qty"),
                                                            proj(var("p"), "price"),
                                                        ),
                                                    ),
                                                ])),
                                            ),
                                        ),
                                    ),
                                    &["pname"],
                                    &["total"],
                                ),
                            ),
                        ])),
                    ),
                ),
            ])),
        );
        let out = eval(&q, &env).unwrap();
        let customers = out.as_bag().unwrap();
        assert_eq!(customers.len(), 1);
        let orders = customers.items()[0]
            .as_tuple()
            .unwrap()
            .get("corders")
            .unwrap()
            .as_bag()
            .unwrap();
        assert_eq!(orders.len(), 1);
        let oparts = orders.items()[0]
            .as_tuple()
            .unwrap()
            .get("oparts")
            .unwrap()
            .as_bag()
            .unwrap();
        // bolt: 3.0 * 2.0 = 6.0 ; nut: 2.0 * 0.5 = 1.0
        assert_eq!(oparts.len(), 2);
        let bolt = oparts
            .iter()
            .find(|v| v.as_tuple().unwrap().get("pname") == Some(&Value::str("bolt")))
            .unwrap();
        assert_eq!(
            bolt.as_tuple().unwrap().get("total"),
            Some(&Value::Real(6.0))
        );
    }
}
