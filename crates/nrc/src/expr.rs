//! The NRC expression language (Figure 1), extended with the label and
//! dictionary constructs of NRC^{Lbl+λ} (Section 4) used by the shredded
//! compilation route.

use std::collections::BTreeSet;

use crate::types::Type;
use crate::value::Value;

/// Primitive binary operations on scalars (`PrimOp` in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always yields a real).
    Div,
}

impl PrimOp {
    /// Symbol used by the pretty printer.
    pub fn symbol(&self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
        }
    }
}

/// Comparison operators on scalars (`RelOp` in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Symbol used by the pretty printer.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Evaluates the comparison on an [`std::cmp::Ordering`].
    pub fn eval(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// An NRC expression.
///
/// The first group of variants is the core NRC of Figure 1; the second group
/// (`NewLabel` onwards) is the NRC^{Lbl+λ} extension used internally by the
/// query shredding transformation. User programs are expected to use only the
/// core constructs; the shredder introduces the extended ones.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    // ----- core NRC -------------------------------------------------------
    /// A scalar constant.
    Const(Value),
    /// A variable reference (free input, `for`-bound or `let`-bound).
    Var(String),
    /// Tuple projection `e.a`.
    Proj {
        /// The tuple-valued expression.
        tuple: Box<Expr>,
        /// The attribute being accessed.
        field: String,
    },
    /// Tuple construction `⟨a1 := e1, …, an := en⟩`.
    Tuple(Vec<(String, Expr)>),
    /// The empty bag `∅`, optionally annotated with its element type.
    EmptyBag(Option<Type>),
    /// Singleton bag `{e}`.
    Singleton(Box<Expr>),
    /// `get(e)`: extracts the only element of a singleton bag.
    Get(Box<Expr>),
    /// `for var in e1 union e2`: bag comprehension.
    For {
        /// The bound variable.
        var: String,
        /// The bag iterated over.
        source: Box<Expr>,
        /// The body, evaluated once per element; must be bag-typed.
        body: Box<Expr>,
    },
    /// Additive bag union `e1 ⊎ e2`.
    Union(Box<Expr>, Box<Expr>),
    /// `let var := e1 in e2`.
    Let {
        /// The bound variable.
        var: String,
        /// The bound expression.
        value: Box<Expr>,
        /// The body in which `var` is visible.
        body: Box<Expr>,
    },
    /// `if cond then e1 [else e2]`. When the else branch is absent the
    /// expression must be bag-typed and yields the empty bag.
    If {
        /// The condition.
        cond: Box<Expr>,
        /// The then branch.
        then_branch: Box<Expr>,
        /// The optional else branch.
        else_branch: Option<Box<Expr>>,
    },
    /// Primitive scalar arithmetic.
    Prim {
        /// The operator.
        op: PrimOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Scalar comparison.
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Boolean conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Boolean disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// `dedup(e)`: resets all multiplicities to one. The input must be a flat
    /// bag.
    Dedup(Box<Expr>),
    /// `groupBy_key(e)`: groups the tuples of `e` by the `key` attributes and
    /// collects the remaining attributes of each group into a bag-valued
    /// attribute named `group_attr`.
    GroupBy {
        /// Input bag.
        input: Box<Expr>,
        /// Grouping attributes (must be flat).
        key: Vec<String>,
        /// Name of the produced bag-valued attribute.
        group_attr: String,
    },
    /// `sumBy^values_key(e)`: groups the tuples of `e` by the `key` attributes
    /// and sums the `values` attributes within each group.
    SumBy {
        /// Input bag.
        input: Box<Expr>,
        /// Grouping attributes (must be flat).
        key: Vec<String>,
        /// Summed attributes.
        values: Vec<String>,
    },

    // ----- NRC^{Lbl+λ} extension (shredded pipeline) -----------------------
    /// `NewLabel(e1, …, en)`: constructs a label at construction site `site`
    /// capturing the given flat values.
    NewLabel {
        /// Identifier of this construction site (assigned by the shredder).
        site: u32,
        /// Captured expressions together with the names under which
        /// `MatchLabel` will rebind them.
        captures: Vec<(String, Expr)>,
    },
    /// `match l = NewLabel(x1, …, xn) then body`: deconstructs a label built
    /// at `site`, binding its captured values to `params` inside `body`.
    /// Yields the empty bag when the label comes from a different site.
    MatchLabel {
        /// The label expression being deconstructed.
        label: Box<Expr>,
        /// The construction site the label is matched against.
        site: u32,
        /// Names to which the captured values are bound.
        params: Vec<String>,
        /// The body (bag-typed).
        body: Box<Expr>,
    },
    /// λ-abstraction over a label parameter (symbolic dictionaries only —
    /// never evaluated, eliminated by materialization).
    Lambda {
        /// The label parameter.
        param: String,
        /// The dictionary body.
        body: Box<Expr>,
    },
    /// Application of a symbolic dictionary to a label (symbolic phase only).
    Lookup {
        /// The dictionary expression (of function type).
        dict: Box<Expr>,
        /// The label to look up.
        label: Box<Expr>,
    },
    /// Lookup of a label in a *materialized* dictionary, i.e. a flat bag of
    /// `⟨label, value⟩` tuples; yields the associated `value` bag (empty when
    /// the label is absent).
    MatLookup {
        /// The materialized dictionary (bag of label/value tuples).
        dict: Box<Expr>,
        /// The label to look up.
        label: Box<Expr>,
    },
    /// Union of two dictionary trees (used when shredding bag unions).
    DictTreeUnion(Box<Expr>, Box<Expr>),
    /// `BagToDict(e)`: casts a bag of `⟨label, value⟩` tuples to a dictionary,
    /// making the label-based partitioning guarantee explicit.
    BagToDict(Box<Expr>),
}

impl Expr {
    /// Free variables of the expression, in no particular order.
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match self {
            Expr::Const(_) | Expr::EmptyBag(_) => {}
            Expr::Var(v) => {
                if !bound.contains(v) {
                    out.insert(v.clone());
                }
            }
            Expr::Proj { tuple, .. } => tuple.collect_free_vars(bound, out),
            Expr::Tuple(fields) => {
                for (_, e) in fields {
                    e.collect_free_vars(bound, out);
                }
            }
            Expr::Singleton(e)
            | Expr::Get(e)
            | Expr::Not(e)
            | Expr::Dedup(e)
            | Expr::BagToDict(e) => e.collect_free_vars(bound, out),
            Expr::For { var, source, body } => {
                source.collect_free_vars(bound, out);
                bound.push(var.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
            }
            Expr::Let { var, value, body } => {
                value.collect_free_vars(bound, out);
                bound.push(var.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
            }
            Expr::Union(a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::DictTreeUnion(a, b) => {
                a.collect_free_vars(bound, out);
                b.collect_free_vars(bound, out);
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.collect_free_vars(bound, out);
                then_branch.collect_free_vars(bound, out);
                if let Some(e) = else_branch {
                    e.collect_free_vars(bound, out);
                }
            }
            Expr::Prim { left, right, .. } | Expr::Cmp { left, right, .. } => {
                left.collect_free_vars(bound, out);
                right.collect_free_vars(bound, out);
            }
            Expr::GroupBy { input, .. } | Expr::SumBy { input, .. } => {
                input.collect_free_vars(bound, out)
            }
            Expr::NewLabel { captures, .. } => {
                for (_, e) in captures {
                    e.collect_free_vars(bound, out);
                }
            }
            Expr::MatchLabel {
                label,
                params,
                body,
                ..
            } => {
                label.collect_free_vars(bound, out);
                let n = bound.len();
                bound.extend(params.iter().cloned());
                body.collect_free_vars(bound, out);
                bound.truncate(n);
            }
            Expr::Lambda { param, body } => {
                bound.push(param.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
            }
            Expr::Lookup { dict, label } | Expr::MatLookup { dict, label } => {
                dict.collect_free_vars(bound, out);
                label.collect_free_vars(bound, out);
            }
        }
    }

    /// Replaces every free occurrence of variable `name` with `replacement`.
    ///
    /// Bound occurrences (introduced by `for`, `let`, `match`, `λ`) shadow the
    /// substitution as usual. No capture-avoidance is attempted beyond
    /// shadowing: callers (the shredder and optimizer) only substitute fresh
    /// or input variables, which cannot be captured.
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        let recur = |e: &Expr| e.substitute(name, replacement);
        match self {
            Expr::Const(_) | Expr::EmptyBag(_) => self.clone(),
            Expr::Var(v) => {
                if v == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Proj { tuple, field } => Expr::Proj {
                tuple: Box::new(recur(tuple)),
                field: field.clone(),
            },
            Expr::Tuple(fields) => {
                Expr::Tuple(fields.iter().map(|(n, e)| (n.clone(), recur(e))).collect())
            }
            Expr::Singleton(e) => Expr::Singleton(Box::new(recur(e))),
            Expr::Get(e) => Expr::Get(Box::new(recur(e))),
            Expr::Not(e) => Expr::Not(Box::new(recur(e))),
            Expr::Dedup(e) => Expr::Dedup(Box::new(recur(e))),
            Expr::BagToDict(e) => Expr::BagToDict(Box::new(recur(e))),
            Expr::For { var, source, body } => Expr::For {
                var: var.clone(),
                source: Box::new(recur(source)),
                body: if var == name {
                    body.clone()
                } else {
                    Box::new(recur(body))
                },
            },
            Expr::Let { var, value, body } => Expr::Let {
                var: var.clone(),
                value: Box::new(recur(value)),
                body: if var == name {
                    body.clone()
                } else {
                    Box::new(recur(body))
                },
            },
            Expr::Union(a, b) => Expr::Union(Box::new(recur(a)), Box::new(recur(b))),
            Expr::And(a, b) => Expr::And(Box::new(recur(a)), Box::new(recur(b))),
            Expr::Or(a, b) => Expr::Or(Box::new(recur(a)), Box::new(recur(b))),
            Expr::DictTreeUnion(a, b) => {
                Expr::DictTreeUnion(Box::new(recur(a)), Box::new(recur(b)))
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => Expr::If {
                cond: Box::new(recur(cond)),
                then_branch: Box::new(recur(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(recur(e))),
            },
            Expr::Prim { op, left, right } => Expr::Prim {
                op: *op,
                left: Box::new(recur(left)),
                right: Box::new(recur(right)),
            },
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(recur(left)),
                right: Box::new(recur(right)),
            },
            Expr::GroupBy {
                input,
                key,
                group_attr,
            } => Expr::GroupBy {
                input: Box::new(recur(input)),
                key: key.clone(),
                group_attr: group_attr.clone(),
            },
            Expr::SumBy { input, key, values } => Expr::SumBy {
                input: Box::new(recur(input)),
                key: key.clone(),
                values: values.clone(),
            },
            Expr::NewLabel { site, captures } => Expr::NewLabel {
                site: *site,
                captures: captures
                    .iter()
                    .map(|(n, e)| (n.clone(), recur(e)))
                    .collect(),
            },
            Expr::MatchLabel {
                label,
                site,
                params,
                body,
            } => Expr::MatchLabel {
                label: Box::new(recur(label)),
                site: *site,
                params: params.clone(),
                body: if params.iter().any(|p| p == name) {
                    body.clone()
                } else {
                    Box::new(recur(body))
                },
            },
            Expr::Lambda { param, body } => Expr::Lambda {
                param: param.clone(),
                body: if param == name {
                    body.clone()
                } else {
                    Box::new(recur(body))
                },
            },
            Expr::Lookup { dict, label } => Expr::Lookup {
                dict: Box::new(recur(dict)),
                label: Box::new(recur(label)),
            },
            Expr::MatLookup { dict, label } => Expr::MatLookup {
                dict: Box::new(recur(dict)),
                label: Box::new(recur(label)),
            },
        }
    }

    /// True when the expression contains any NRC^{Lbl+λ} construct.
    pub fn uses_labels(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(
                e,
                Expr::NewLabel { .. }
                    | Expr::MatchLabel { .. }
                    | Expr::Lambda { .. }
                    | Expr::Lookup { .. }
                    | Expr::MatLookup { .. }
                    | Expr::DictTreeUnion(..)
                    | Expr::BagToDict(..)
            ) {
                found = true;
            }
        });
        found
    }

    /// Calls `f` on this expression and every sub-expression, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::EmptyBag(_) => {}
            Expr::Proj { tuple, .. } => tuple.visit(f),
            Expr::Tuple(fields) => fields.iter().for_each(|(_, e)| e.visit(f)),
            Expr::Singleton(e)
            | Expr::Get(e)
            | Expr::Not(e)
            | Expr::Dedup(e)
            | Expr::BagToDict(e) => e.visit(f),
            Expr::For { source, body, .. } => {
                source.visit(f);
                body.visit(f);
            }
            Expr::Let { value, body, .. } => {
                value.visit(f);
                body.visit(f);
            }
            Expr::Union(a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::DictTreeUnion(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.visit(f);
                then_branch.visit(f);
                if let Some(e) = else_branch {
                    e.visit(f);
                }
            }
            Expr::Prim { left, right, .. } | Expr::Cmp { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::GroupBy { input, .. } | Expr::SumBy { input, .. } => input.visit(f),
            Expr::NewLabel { captures, .. } => captures.iter().for_each(|(_, e)| e.visit(f)),
            Expr::MatchLabel { label, body, .. } => {
                label.visit(f);
                body.visit(f);
            }
            Expr::Lambda { body, .. } => body.visit(f),
            Expr::Lookup { dict, label } | Expr::MatLookup { dict, label } => {
                dict.visit(f);
                label.visit(f);
            }
        }
    }

    /// Number of AST nodes (useful for tests and optimizer statistics).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn free_vars_respect_binders() {
        // for x in R union { <a := x.a, b := y.b> }
        let e = forin(
            "x",
            var("R"),
            singleton(tuple([
                ("a", proj(var("x"), "a")),
                ("b", proj(var("y"), "b")),
            ])),
        );
        let fv = e.free_vars();
        assert!(fv.contains("R"));
        assert!(fv.contains("y"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn substitution_is_shadow_aware() {
        let e = forin("x", var("R"), singleton(proj(var("x"), "a")));
        let s = e.substitute("x", &var("SHOULD_NOT_APPEAR"));
        assert_eq!(e, s, "bound x must not be substituted");
        let s2 = e.substitute("R", &var("S"));
        assert!(s2.free_vars().contains("S"));
        assert!(!s2.free_vars().contains("R"));
    }

    #[test]
    fn uses_labels_detects_extension_constructs() {
        let core = forin("x", var("R"), singleton(var("x")));
        assert!(!core.uses_labels());
        let ext = Expr::MatLookup {
            dict: Box::new(var("D")),
            label: Box::new(proj(var("x"), "corders")),
        };
        assert!(ext.uses_labels());
    }

    #[test]
    fn size_counts_nodes() {
        let e = ifthen(
            cmp_eq(proj(var("x"), "pid"), proj(var("p"), "pid")),
            singleton(var("x")),
        );
        assert!(e.size() >= 7);
    }
}
