//! # trance-nrc
//!
//! The Nested Relational Calculus (NRC) front end of **trance-rs**, a Rust
//! reproduction of *"Scalable Querying of Nested Data"* (VLDB 2020).
//!
//! This crate provides:
//!
//! * the nested data model ([`value::Value`], [`types::Type`]) shared by every
//!   other crate in the workspace,
//! * the NRC expression language of Figure 1 ([`expr::Expr`]) together with
//!   the NRC^{Lbl+λ} extension (labels, dictionaries) used by the shredded
//!   compilation route,
//! * an ergonomic [`builder`] DSL for writing queries,
//! * a structural type checker ([`typecheck`]),
//! * a single-node reference evaluator ([`eval`]) defining the semantics that
//!   the distributed pipelines must reproduce, and
//! * programs as sequences of assignments ([`program::Program`]).
//!
//! ```
//! use trance_nrc::builder::*;
//! use trance_nrc::eval::{eval, Env};
//! use trance_nrc::value::Value;
//!
//! let q = forin("x", var("R"), singleton(add(var("x"), int(1))));
//! let env = Env::from_bindings([("R", Value::bag(vec![Value::Int(1), Value::Int(2)]))]);
//! assert_eq!(eval(&q, &env).unwrap(), Value::bag(vec![Value::Int(2), Value::Int(3)]));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod compare;
pub mod error;
pub mod eval;
pub mod expr;
pub mod pretty;
pub mod program;
pub mod typecheck;
pub mod types;
pub mod value;

pub use compare::{approx_eq, bags_approx_equal, canonical_rows};
pub use error::{NrcError, Result};
pub use eval::{eval, Env, Evaluator};
pub use expr::{CmpOp, Expr, PrimOp};
pub use program::{Assignment, Program};
pub use typecheck::{infer, TypeEnv};
pub use types::{ScalarType, TupleType, Type};
pub use value::{Bag, Label, MemSize, Tuple, Value};
