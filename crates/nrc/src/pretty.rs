//! Pretty printing of NRC expressions and programs in the surface syntax
//! accepted by the `trance-frontend` parser.
//!
//! The output is **re-parseable**: for every expression built from scalar
//! constants, `parse(pretty(e)) == e` (the round-trip law checked by the
//! compiler's seeded fuzzer). Indentation and line breaks are cosmetic —
//! only parenthesisation carries meaning. The printer therefore:
//!
//! * renders operands (operator arguments, call arguments, inline tuple
//!   fields) in a fully parenthesised single-line form,
//! * parenthesises control forms (`for`/`let`/`if`/`lambda`/`match`) and
//!   `union` chains when they appear as operands of an infix `union`,
//! * parenthesises an `if` without `else` in the then-branch of an `if`
//!   *with* `else` (the dangling-else rule binds `else` to the innermost
//!   `if`),
//! * prints reals in a form that survives the trip (`2.0`, not `2`),
//!   escapes strings, and keeps the element-type annotation on typed empty
//!   bags (`{}: <a: int>`).
//!
//! Composite constants (tuple/bag/label *values*) and non-finite reals
//! have no surface spelling; they fall back to the `Value` display form
//! and are the only expressions that do not round-trip.

use std::fmt::Write as _;

use crate::expr::Expr;
use crate::program::Program;
use crate::value::Value;

/// Renders an expression as indented, human-readable text.
pub fn pretty(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

/// Renders a program: one `name <= expr` block per assignment.
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for a in &program.assignments {
        let _ = writeln!(out, "{} <=", a.name);
        write_expr(&mut out, &a.expr, 1);
        out.push('\n');
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Renders a scalar constant in its surface spelling.
fn fmt_const(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("{i}"),
        // `{:?}` keeps the decimal point (`2.0`), so reals re-parse as reals.
        Value::Real(r) => format!("{r:?}"),
        Value::Str(s) => escape_str(s),
        Value::Bool(b) => format!("{b}"),
        Value::Null => "NULL".into(),
        Value::Date(d) => format!("date({d})"),
        // Composite constants have no surface spelling; fall back to the
        // value display form (not re-parseable, documented above).
        other => format!("{other}"),
    }
}

fn escape_str(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{{{:x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Precedence of the *rendered block form*: only control forms and infix
/// `union`/`DictTreeUnion` print bare in block mode — everything else is
/// rendered atom-safe by [`inline`].
fn rendered_prec(e: &Expr) -> u8 {
    match e {
        Expr::For { .. }
        | Expr::Let { .. }
        | Expr::If { .. }
        | Expr::Lambda { .. }
        | Expr::MatchLabel { .. } => 0,
        Expr::Union(..) | Expr::DictTreeUnion(..) => 1,
        _ => 9,
    }
}

/// Writes `e` in block form, parenthesising it when its rendered
/// precedence is below what the surrounding position requires.
fn write_child(out: &mut String, e: &Expr, level: usize, min: u8) {
    if rendered_prec(e) < min {
        indent(out, level);
        out.push_str("(\n");
        write_expr(out, e, level + 1);
        out.push('\n');
        indent(out, level);
        out.push(')');
    } else {
        write_expr(out, e, level);
    }
}

/// True when a trailing `else` after `e` would attach to an `if` *inside*
/// `e` (the dangling-else rule), so the printer must parenthesise.
fn captures_else(e: &Expr) -> bool {
    match e {
        Expr::If {
            else_branch: None, ..
        } => true,
        Expr::If {
            else_branch: Some(eb),
            ..
        } => captures_else(eb),
        Expr::For { body, .. }
        | Expr::Let { body, .. }
        | Expr::Lambda { body, .. }
        | Expr::MatchLabel { body, .. } => captures_else(body),
        _ => false,
    }
}

fn write_expr(out: &mut String, expr: &Expr, level: usize) {
    match expr {
        Expr::Const(_)
        | Expr::Var(_)
        | Expr::Proj { .. }
        | Expr::Prim { .. }
        | Expr::Cmp { .. }
        | Expr::And(..)
        | Expr::Or(..)
        | Expr::Not(..)
        | Expr::NewLabel { .. }
        | Expr::Lookup { .. }
        | Expr::MatLookup { .. }
        | Expr::Get(_)
        | Expr::EmptyBag(_) => {
            indent(out, level);
            out.push_str(&block_atom(expr));
        }
        Expr::Tuple(fields) => {
            indent(out, level);
            out.push_str("<\n");
            for (n, e) in fields {
                indent(out, level + 1);
                let _ = write!(out, "{n} := ");
                if is_inline(e) {
                    out.push_str(&inline(e));
                } else {
                    out.push('\n');
                    write_expr(out, e, level + 2);
                }
                out.push_str(",\n");
            }
            indent(out, level);
            out.push('>');
        }
        Expr::Singleton(e) => {
            indent(out, level);
            if is_inline(e) {
                let _ = write!(out, "{{ {} }}", inline(e));
            } else {
                out.push_str("{\n");
                write_expr(out, e, level + 1);
                out.push('\n');
                indent(out, level);
                out.push('}');
            }
        }
        Expr::For { var, source, body } => {
            indent(out, level);
            let _ = writeln!(out, "for {var} in {} union", inline(source));
            write_expr(out, body, level + 1);
        }
        Expr::Union(a, b) => {
            write_child(out, a, level, 1);
            out.push('\n');
            indent(out, level);
            out.push_str("union\n");
            write_child(out, b, level, 2);
        }
        Expr::Let { var, value, body } => {
            indent(out, level);
            let _ = writeln!(out, "let {var} := {} in", inline(value));
            write_expr(out, body, level);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if {} then", inline(cond));
            if else_branch.is_some() && captures_else(then_branch) {
                indent(out, level + 1);
                out.push_str("(\n");
                write_expr(out, then_branch, level + 2);
                out.push('\n');
                indent(out, level + 1);
                out.push(')');
            } else {
                write_expr(out, then_branch, level + 1);
            }
            if let Some(e) = else_branch {
                out.push('\n');
                indent(out, level);
                out.push_str("else\n");
                write_expr(out, e, level + 1);
            }
        }
        Expr::Dedup(e) => {
            indent(out, level);
            out.push_str("dedup(\n");
            write_expr(out, e, level + 1);
            out.push(')');
        }
        Expr::GroupBy {
            input,
            key,
            group_attr,
        } => {
            indent(out, level);
            let _ = writeln!(out, "groupBy[{}; group={group_attr}](", key.join(","));
            write_expr(out, input, level + 1);
            out.push(')');
        }
        Expr::SumBy { input, key, values } => {
            indent(out, level);
            let _ = writeln!(out, "sumBy[{}; {}](", key.join(","), values.join(","));
            write_expr(out, input, level + 1);
            out.push(')');
        }
        Expr::MatchLabel {
            label,
            site,
            params,
            body,
        } => {
            indent(out, level);
            let _ = writeln!(
                out,
                "match {} = NewLabel#{site}({}) then",
                inline(label),
                params.join(", ")
            );
            write_expr(out, body, level + 1);
        }
        Expr::Lambda { param, body } => {
            indent(out, level);
            let _ = writeln!(out, "lambda {param} .");
            write_expr(out, body, level + 1);
        }
        Expr::DictTreeUnion(a, b) => {
            write_child(out, a, level, 1);
            out.push('\n');
            indent(out, level);
            out.push_str("DictTreeUnion\n");
            write_child(out, b, level, 2);
        }
        Expr::BagToDict(e) => {
            indent(out, level);
            out.push_str("BagToDict(\n");
            write_expr(out, e, level + 1);
            out.push(')');
        }
    }
}

/// Block rendering for forms that are single-line anyway. Unlike
/// [`inline`], a typed empty bag needs no parentheses here because block
/// positions are full-expression positions.
fn block_atom(e: &Expr) -> String {
    match e {
        Expr::EmptyBag(None) => "{}".into(),
        Expr::EmptyBag(Some(t)) => format!("{{}}: {t}"),
        _ => inline(e),
    }
}

fn is_inline(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Const(_)
            | Expr::Var(_)
            | Expr::Proj { .. }
            | Expr::Prim { .. }
            | Expr::Cmp { .. }
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::NewLabel { .. }
            | Expr::Lookup { .. }
            | Expr::MatLookup { .. }
            | Expr::Get(_)
            | Expr::EmptyBag(_)
    )
}

/// Renders `e` on one line in an *atom-safe* form: the result can be used
/// in any operand position (including as a projection base) without
/// changing how it parses. Non-atomic forms are parenthesised.
fn inline(e: &Expr) -> String {
    match e {
        Expr::Const(v) => fmt_const(v),
        Expr::Var(name) => name.clone(),
        Expr::Proj { tuple, field } => format!("{}.{field}", inline(tuple)),
        Expr::Tuple(fields) => {
            let fs: Vec<String> = fields
                .iter()
                .map(|(n, e)| format!("{n} := {}", inline(e)))
                .collect();
            format!("<{}>", fs.join(", "))
        }
        Expr::EmptyBag(None) => "{}".into(),
        Expr::EmptyBag(Some(t)) => format!("({{}}: {t})"),
        Expr::Singleton(e) => format!("{{ {} }}", inline(e)),
        Expr::Get(e) => format!("get({})", inline(e)),
        Expr::For { var, source, body } => {
            format!("(for {var} in {} union {})", inline(source), inline(body))
        }
        Expr::Union(a, b) => format!("({} union {})", inline(a), inline(b)),
        Expr::Let { var, value, body } => {
            format!("(let {var} := {} in {})", inline(value), inline(body))
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => match else_branch {
            Some(eb) => format!(
                "(if {} then {} else {})",
                inline(cond),
                inline(then_branch),
                inline(eb)
            ),
            None => format!("(if {} then {})", inline(cond), inline(then_branch)),
        },
        Expr::Prim { op, left, right } => {
            format!("({} {} {})", inline(left), op.symbol(), inline(right))
        }
        Expr::Cmp { op, left, right } => {
            format!("({} {} {})", inline(left), op.symbol(), inline(right))
        }
        Expr::And(a, b) => format!("({} && {})", inline(a), inline(b)),
        Expr::Or(a, b) => format!("({} || {})", inline(a), inline(b)),
        Expr::Not(e) => format!("(!{})", inline(e)),
        Expr::Dedup(e) => format!("dedup({})", inline(e)),
        Expr::GroupBy {
            input,
            key,
            group_attr,
        } => format!(
            "groupBy[{}; group={group_attr}]({})",
            key.join(","),
            inline(input)
        ),
        Expr::SumBy { input, key, values } => format!(
            "sumBy[{}; {}]({})",
            key.join(","),
            values.join(","),
            inline(input)
        ),
        Expr::NewLabel { site, captures } => {
            let caps: Vec<String> = captures
                .iter()
                .map(|(n, e)| format!("{n}:={}", inline(e)))
                .collect();
            format!("NewLabel#{site}({})", caps.join(", "))
        }
        Expr::MatchLabel {
            label,
            site,
            params,
            body,
        } => format!(
            "(match {} = NewLabel#{site}({}) then {})",
            inline(label),
            params.join(", "),
            inline(body)
        ),
        Expr::Lambda { param, body } => format!("(lambda {param} . {})", inline(body)),
        Expr::Lookup { dict, label } => format!("Lookup({}, {})", inline(dict), inline(label)),
        Expr::MatLookup { dict, label } => {
            format!("MatLookup({}, {})", inline(dict), inline(label))
        }
        Expr::DictTreeUnion(a, b) => format!("({} DictTreeUnion {})", inline(a), inline(b)),
        Expr::BagToDict(e) => format!("BagToDict({})", inline(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::types::Type;

    #[test]
    fn pretty_prints_the_running_example_shape() {
        let q = forin(
            "cop",
            var("COP"),
            singleton(tuple([
                ("cname", proj(var("cop"), "cname")),
                (
                    "oparts",
                    sum_by(
                        forin(
                            "op",
                            proj(var("cop"), "oparts"),
                            ifthen(
                                cmp_eq(proj(var("op"), "pid"), int(1)),
                                singleton(tuple([("total", proj(var("op"), "qty"))])),
                            ),
                        ),
                        &["pname"],
                        &["total"],
                    ),
                ),
            ])),
        );
        let s = pretty(&q);
        assert!(s.contains("for cop in COP union"));
        assert!(s.contains("sumBy[pname; total]"));
        assert!(s.contains("cop.cname"));
    }

    #[test]
    fn pretty_program_lists_assignments() {
        let mut p = Program::new();
        p.assign("A", var("R"));
        p.assign("B", dedup(var("A")));
        let s = pretty_program(&p);
        assert!(s.contains("A <="));
        assert!(s.contains("B <="));
    }

    #[test]
    fn reals_keep_their_decimal_point() {
        assert_eq!(pretty(&real(2.0)), "2.0");
        assert_eq!(pretty(&real(-0.5)), "-0.5");
        assert_eq!(pretty(&int(2)), "2");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(pretty(&string("a \"b\"\n\\c")), "\"a \\\"b\\\"\\n\\\\c\"");
    }

    #[test]
    fn typed_empty_bags_keep_their_annotation() {
        let e = empty_bag_of(Type::tuple([("a", Type::int())]));
        assert_eq!(pretty(&e), "{}: <a: int>");
    }

    #[test]
    fn union_parenthesises_control_form_operands() {
        let e = union(
            forin("x", var("R"), singleton(var("x"))),
            forin("y", var("S"), singleton(var("y"))),
        );
        let s = pretty(&e);
        assert!(
            s.starts_with("("),
            "left control operand needs parens:\n{s}"
        );
        assert!(s.contains(")\nunion\n("), "both operands need parens:\n{s}");
    }

    #[test]
    fn dangling_else_gets_parenthesised() {
        let e = ifelse(
            var("a"),
            ifthen(var("b"), int(1)), // would capture the else below
            int(2),
        );
        let s = pretty(&e);
        assert!(
            s.contains("("),
            "else-less then-branch must be parenthesised:\n{s}"
        );
    }
}
