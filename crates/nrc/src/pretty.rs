//! Pretty printing of NRC expressions and programs in a notation close to the
//! paper's surface syntax.

use std::fmt::Write as _;

use crate::expr::Expr;
use crate::program::Program;

/// Renders an expression as indented, human-readable text.
pub fn pretty(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr, 0);
    out
}

/// Renders a program: one `name <= expr` block per assignment.
pub fn pretty_program(program: &Program) -> String {
    let mut out = String::new();
    for a in &program.assignments {
        let _ = writeln!(out, "{} <=", a.name);
        write_expr(&mut out, &a.expr, 1);
        out.push('\n');
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_expr(out: &mut String, expr: &Expr, level: usize) {
    match expr {
        Expr::Const(v) => {
            indent(out, level);
            let _ = write!(out, "{v}");
        }
        Expr::Var(name) => {
            indent(out, level);
            out.push_str(name);
        }
        Expr::Proj { .. } | Expr::Prim { .. } | Expr::Cmp { .. } => {
            indent(out, level);
            out.push_str(&inline(expr));
        }
        Expr::Tuple(fields) => {
            indent(out, level);
            out.push_str("<\n");
            for (n, e) in fields {
                indent(out, level + 1);
                let _ = write!(out, "{n} := ");
                if is_inline(e) {
                    out.push_str(&inline(e));
                } else {
                    out.push('\n');
                    write_expr(out, e, level + 2);
                }
                out.push_str(",\n");
            }
            indent(out, level);
            out.push('>');
        }
        Expr::EmptyBag(_) => {
            indent(out, level);
            out.push_str("{}");
        }
        Expr::Singleton(e) => {
            indent(out, level);
            if is_inline(e) {
                let _ = write!(out, "{{ {} }}", inline(e));
            } else {
                out.push_str("{\n");
                write_expr(out, e, level + 1);
                out.push('\n');
                indent(out, level);
                out.push('}');
            }
        }
        Expr::Get(e) => {
            indent(out, level);
            let _ = write!(out, "get({})", inline(e));
        }
        Expr::For { var, source, body } => {
            indent(out, level);
            let _ = writeln!(out, "for {var} in {} union", inline(source));
            write_expr(out, body, level + 1);
        }
        Expr::Union(a, b) => {
            write_expr(out, a, level);
            out.push('\n');
            indent(out, level);
            out.push_str("union\n");
            write_expr(out, b, level);
        }
        Expr::Let { var, value, body } => {
            indent(out, level);
            let _ = writeln!(out, "let {var} := {} in", inline(value));
            write_expr(out, body, level);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if {} then", inline(cond));
            write_expr(out, then_branch, level + 1);
            if let Some(e) = else_branch {
                out.push('\n');
                indent(out, level);
                out.push_str("else\n");
                write_expr(out, e, level + 1);
            }
        }
        Expr::And(..) | Expr::Or(..) | Expr::Not(..) => {
            indent(out, level);
            out.push_str(&inline(expr));
        }
        Expr::Dedup(e) => {
            indent(out, level);
            out.push_str("dedup(\n");
            write_expr(out, e, level + 1);
            out.push(')');
        }
        Expr::GroupBy {
            input,
            key,
            group_attr,
        } => {
            indent(out, level);
            let _ = writeln!(out, "groupBy[{}; group={group_attr}](", key.join(","));
            write_expr(out, input, level + 1);
            out.push(')');
        }
        Expr::SumBy { input, key, values } => {
            indent(out, level);
            let _ = writeln!(out, "sumBy[{}; {}](", key.join(","), values.join(","));
            write_expr(out, input, level + 1);
            out.push(')');
        }
        Expr::NewLabel { site, captures } => {
            indent(out, level);
            let caps: Vec<String> = captures
                .iter()
                .map(|(n, e)| format!("{n}:={}", inline(e)))
                .collect();
            let _ = write!(out, "NewLabel#{site}({})", caps.join(", "));
        }
        Expr::MatchLabel {
            label,
            site,
            params,
            body,
        } => {
            indent(out, level);
            let _ = writeln!(
                out,
                "match {} = NewLabel#{site}({}) then",
                inline(label),
                params.join(", ")
            );
            write_expr(out, body, level + 1);
        }
        Expr::Lambda { param, body } => {
            indent(out, level);
            let _ = writeln!(out, "lambda {param} .");
            write_expr(out, body, level + 1);
        }
        Expr::Lookup { dict, label } => {
            indent(out, level);
            let _ = write!(out, "Lookup({}, {})", inline(dict), inline(label));
        }
        Expr::MatLookup { dict, label } => {
            indent(out, level);
            let _ = write!(out, "MatLookup({}, {})", inline(dict), inline(label));
        }
        Expr::DictTreeUnion(a, b) => {
            write_expr(out, a, level);
            out.push('\n');
            indent(out, level);
            out.push_str("DictTreeUnion\n");
            write_expr(out, b, level);
        }
        Expr::BagToDict(e) => {
            indent(out, level);
            out.push_str("BagToDict(\n");
            write_expr(out, e, level + 1);
            out.push(')');
        }
    }
}

fn is_inline(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Const(_)
            | Expr::Var(_)
            | Expr::Proj { .. }
            | Expr::Prim { .. }
            | Expr::Cmp { .. }
            | Expr::NewLabel { .. }
            | Expr::Lookup { .. }
            | Expr::MatLookup { .. }
            | Expr::Get(_)
    )
}

fn inline(e: &Expr) -> String {
    match e {
        Expr::Const(v) => format!("{v}"),
        Expr::Var(name) => name.clone(),
        Expr::Proj { tuple, field } => format!("{}.{field}", inline(tuple)),
        Expr::Prim { op, left, right } => {
            format!("({} {} {})", inline(left), op.symbol(), inline(right))
        }
        Expr::Cmp { op, left, right } => {
            format!("({} {} {})", inline(left), op.symbol(), inline(right))
        }
        Expr::And(a, b) => format!("({} && {})", inline(a), inline(b)),
        Expr::Or(a, b) => format!("({} || {})", inline(a), inline(b)),
        Expr::Not(e) => format!("!({})", inline(e)),
        Expr::Get(e) => format!("get({})", inline(e)),
        Expr::NewLabel { site, captures } => {
            let caps: Vec<String> = captures
                .iter()
                .map(|(n, e)| format!("{n}:={}", inline(e)))
                .collect();
            format!("NewLabel#{site}({})", caps.join(", "))
        }
        Expr::Lookup { dict, label } => format!("Lookup({}, {})", inline(dict), inline(label)),
        Expr::MatLookup { dict, label } => {
            format!("MatLookup({}, {})", inline(dict), inline(label))
        }
        other => {
            // Fall back to the block renderer flattened onto one line.
            let mut s = String::new();
            write_expr(&mut s, other, 0);
            s.split_whitespace().collect::<Vec<_>>().join(" ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn pretty_prints_the_running_example_shape() {
        let q = forin(
            "cop",
            var("COP"),
            singleton(tuple([
                ("cname", proj(var("cop"), "cname")),
                (
                    "oparts",
                    sum_by(
                        forin(
                            "op",
                            proj(var("cop"), "oparts"),
                            ifthen(
                                cmp_eq(proj(var("op"), "pid"), int(1)),
                                singleton(tuple([("total", proj(var("op"), "qty"))])),
                            ),
                        ),
                        &["pname"],
                        &["total"],
                    ),
                ),
            ])),
        );
        let s = pretty(&q);
        assert!(s.contains("for cop in COP union"));
        assert!(s.contains("sumBy[pname; total]"));
        assert!(s.contains("cop.cname"));
    }

    #[test]
    fn pretty_program_lists_assignments() {
        let mut p = Program::new();
        p.assign("A", var("R"));
        p.assign("B", dedup(var("A")));
        let s = pretty_program(&p);
        assert!(s.contains("A <="));
        assert!(s.contains("B <="));
    }
}
