//! NRC programs: sequences of assignments `var ⇐ e` (the `P` production in
//! Figure 1). Later assignments may reference earlier ones, which is how the
//! materialization phase of the shredded pipeline expresses its sequence of
//! dictionary-producing queries.

use crate::error::Result;
use crate::eval::{Env, Evaluator};
use crate::expr::Expr;
use crate::typecheck::{infer, TypeEnv};
use crate::types::Type;
use crate::value::Value;

/// One assignment `name ⇐ expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The variable being assigned.
    pub name: String,
    /// The expression computing its value.
    pub expr: Expr,
}

impl Assignment {
    /// Creates an assignment.
    pub fn new(name: impl Into<String>, expr: Expr) -> Self {
        Assignment {
            name: name.into(),
            expr,
        }
    }
}

/// A program: an ordered sequence of assignments.
///
/// By convention the *last* assignment computes the program's result; helper
/// methods expose it as such.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// The assignments, in evaluation order.
    pub assignments: Vec<Assignment>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Creates a single-assignment program computing `expr` into `name`.
    pub fn single(name: impl Into<String>, expr: Expr) -> Self {
        Program {
            assignments: vec![Assignment::new(name, expr)],
        }
    }

    /// Appends an assignment.
    pub fn assign(&mut self, name: impl Into<String>, expr: Expr) -> &mut Self {
        self.assignments.push(Assignment::new(name, expr));
        self
    }

    /// The name of the variable holding the final result, if any.
    pub fn result_name(&self) -> Option<&str> {
        self.assignments.last().map(|a| a.name.as_str())
    }

    /// Names of all assigned variables, in order.
    pub fn assigned_names(&self) -> Vec<&str> {
        self.assignments.iter().map(|a| a.name.as_str()).collect()
    }

    /// Free input variables of the program: variables referenced before (or
    /// without) being assigned.
    pub fn input_names(&self) -> Vec<String> {
        let mut assigned = Vec::new();
        let mut inputs = Vec::new();
        for a in &self.assignments {
            for fv in a.expr.free_vars() {
                if !assigned.contains(&fv) && !inputs.contains(&fv) {
                    inputs.push(fv);
                }
            }
            assigned.push(a.name.clone());
        }
        inputs
    }

    /// Evaluates the whole program with the reference evaluator, returning the
    /// environment extended with every assigned variable.
    pub fn eval_all(&self, inputs: &Env) -> Result<Env> {
        let ev = Evaluator::default();
        let mut env = inputs.clone();
        for a in &self.assignments {
            let v = ev.eval(&a.expr, &env)?;
            env.bind(a.name.clone(), v);
        }
        Ok(env)
    }

    /// Evaluates the program and returns the value of the final assignment.
    pub fn eval_result(&self, inputs: &Env) -> Result<Value> {
        let env = self.eval_all(inputs)?;
        match self.result_name() {
            Some(name) => env.get_or_err(name).cloned(),
            None => Ok(Value::empty_bag()),
        }
    }

    /// Desugars the program into a single expression: every assignment but
    /// the last becomes a `let`, and the final assignment's expression is the
    /// body. Returns `None` for an empty program.
    ///
    /// This is how multi-assignment surface programs are fed to entry points
    /// that take one expression (the compiler's `QuerySpec`, the server's
    /// textual submission path): `A ⇐ e1; Result ⇐ e2` becomes
    /// `let A := e1 in e2`.
    pub fn to_let_chain(&self) -> Option<Expr> {
        let (last, init) = self.assignments.split_last()?;
        let mut body = last.expr.clone();
        for a in init.iter().rev() {
            body = Expr::Let {
                var: a.name.clone(),
                value: Box::new(a.expr.clone()),
                body: Box::new(body),
            };
        }
        Some(body)
    }

    /// Type checks every assignment, returning the type of each assigned
    /// variable (in assignment order).
    pub fn typecheck(&self, inputs: &TypeEnv) -> Result<Vec<(String, Type)>> {
        let mut env = inputs.clone();
        let mut out = Vec::with_capacity(self.assignments.len());
        for a in &self.assignments {
            let t = infer(&a.expr, &env)?;
            env.bind(a.name.clone(), t.clone());
            out.push((a.name.clone(), t));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn programs_thread_assignments_through_the_environment() {
        let mut p = Program::new();
        p.assign(
            "Doubled",
            forin("x", var("R"), singleton(mul(var("x"), int(2)))),
        );
        p.assign(
            "Result",
            forin("y", var("Doubled"), singleton(add(var("y"), int(1)))),
        );
        assert_eq!(p.input_names(), vec!["R".to_string()]);
        assert_eq!(p.result_name(), Some("Result"));

        let env = Env::from_bindings([("R", Value::bag(vec![Value::Int(1), Value::Int(2)]))]);
        let out = p.eval_result(&env).unwrap();
        assert_eq!(out, Value::bag(vec![Value::Int(3), Value::Int(5)]));
    }

    #[test]
    fn typecheck_propagates_assigned_types() {
        let mut p = Program::new();
        p.assign(
            "Names",
            forin(
                "p",
                var("Part"),
                singleton(tuple([("n", proj(var("p"), "pname"))])),
            ),
        );
        p.assign("Deduped", dedup(var("Names")));
        let env = TypeEnv::from_bindings([(
            "Part",
            Type::bag_of([("pid", Type::int()), ("pname", Type::string())]),
        )]);
        let types = p.typecheck(&env).unwrap();
        assert_eq!(types.len(), 2);
        assert!(types[1].1.is_flat_bag());
    }

    #[test]
    fn let_chain_desugaring_preserves_program_semantics() {
        let mut p = Program::new();
        p.assign("A", forin("x", var("R"), singleton(mul(var("x"), int(2)))));
        p.assign(
            "Result",
            forin("y", var("A"), singleton(add(var("y"), int(1)))),
        );
        let chained = p.to_let_chain().unwrap();

        let env = Env::from_bindings([("R", Value::bag(vec![Value::Int(1), Value::Int(2)]))]);
        let direct = p.eval_result(&env).unwrap();
        let desugared = Evaluator::default().eval(&chained, &env).unwrap();
        assert_eq!(direct, desugared);
        assert!(Program::new().to_let_chain().is_none());
    }

    #[test]
    fn input_names_exclude_previously_assigned_variables() {
        let mut p = Program::new();
        p.assign("A", var("In1"));
        p.assign("B", union(var("A"), var("In2")));
        let inputs = p.input_names();
        assert!(inputs.contains(&"In1".to_string()));
        assert!(inputs.contains(&"In2".to_string()));
        assert!(!inputs.contains(&"A".to_string()));
    }
}
