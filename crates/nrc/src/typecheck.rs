//! Type inference / checking for NRC expressions.
//!
//! The checker serves two purposes: validating user programs before
//! compilation, and annotating the unnesting algorithm with the information it
//! needs (chiefly, which attributes are bag-valued and which grouping keys are
//! flat). It is deliberately structural: `Unknown` acts as a wildcard that is
//! refined by [`Type::merge`].

use std::collections::HashMap;

use crate::error::{NrcError, Result};
use crate::expr::{Expr, PrimOp};
use crate::types::{ScalarType, TupleType, Type};

/// A typing environment: variable name → type.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    bindings: HashMap<String, Type>,
}

impl TypeEnv {
    /// Creates an empty typing environment.
    pub fn new() -> Self {
        TypeEnv::default()
    }

    /// Creates a typing environment from `(name, type)` pairs.
    pub fn from_bindings<I, S>(bindings: I) -> Self
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        TypeEnv {
            bindings: bindings.into_iter().map(|(n, t)| (n.into(), t)).collect(),
        }
    }

    /// Binds `name` to `ty`.
    pub fn bind(&mut self, name: impl Into<String>, ty: Type) {
        self.bindings.insert(name.into(), ty);
    }

    /// Looks up `name`.
    pub fn get(&self, name: &str) -> Option<&Type> {
        self.bindings.get(name)
    }
}

/// Infers the type of `expr` under `env`.
pub fn infer(expr: &Expr, env: &TypeEnv) -> Result<Type> {
    match expr {
        Expr::Const(v) => Ok(v.infer_type()),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| NrcError::UnboundVariable(name.clone())),
        Expr::Proj { tuple, field } => {
            let t = infer(tuple, env)?;
            match t {
                Type::Tuple(tt) => tt
                    .field(field)
                    .cloned()
                    .ok_or_else(|| NrcError::UnknownField {
                        field: field.clone(),
                        context: format!("projection on {}", Type::Tuple(tt.clone())),
                    }),
                Type::Unknown => Ok(Type::Unknown),
                other => Err(NrcError::TypeMismatch {
                    expected: "tuple".into(),
                    found: other.to_string(),
                    context: format!("projection .{field}"),
                }),
            }
        }
        Expr::Tuple(fields) => {
            let mut tt = Vec::with_capacity(fields.len());
            for (n, e) in fields {
                tt.push((n.clone(), infer(e, env)?));
            }
            Ok(Type::Tuple(TupleType { fields: tt }))
        }
        Expr::EmptyBag(Some(t)) => Ok(Type::bag(t.clone())),
        Expr::EmptyBag(None) => Ok(Type::bag(Type::Unknown)),
        Expr::Singleton(e) => Ok(Type::bag(infer(e, env)?)),
        Expr::Get(e) => {
            let t = infer(e, env)?;
            match t {
                Type::Bag(inner) => Ok(*inner),
                Type::Unknown => Ok(Type::Unknown),
                other => Err(NrcError::TypeMismatch {
                    expected: "bag".into(),
                    found: other.to_string(),
                    context: "get".into(),
                }),
            }
        }
        Expr::For { var, source, body } => {
            let src = infer(source, env)?;
            let elem = match src {
                Type::Bag(inner) => *inner,
                Type::Dict(inner) => Type::Tuple(TupleType::new([
                    ("label".to_string(), Type::Label),
                    ("value".to_string(), Type::bag(*inner)),
                ])),
                Type::Unknown => Type::Unknown,
                other => {
                    return Err(NrcError::TypeMismatch {
                        expected: "bag".into(),
                        found: other.to_string(),
                        context: format!("for {var} in …"),
                    })
                }
            };
            let mut inner_env = env.clone();
            inner_env.bind(var.clone(), elem);
            let body_t = infer(body, &inner_env)?;
            expect_bag(body_t, "for body")
        }
        Expr::Union(a, b) => {
            let ta = expect_bag(infer(a, env)?, "union left")?;
            let tb = expect_bag(infer(b, env)?, "union right")?;
            if !ta.compatible(&tb) {
                return Err(NrcError::TypeMismatch {
                    expected: ta.to_string(),
                    found: tb.to_string(),
                    context: "bag union".into(),
                });
            }
            Ok(ta.merge(&tb))
        }
        Expr::Let { var, value, body } => {
            let vt = infer(value, env)?;
            let mut inner = env.clone();
            inner.bind(var.clone(), vt);
            infer(body, &inner)
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let ct = infer(cond, env)?;
            if !ct.compatible(&Type::boolean()) {
                return Err(NrcError::TypeMismatch {
                    expected: "bool".into(),
                    found: ct.to_string(),
                    context: "if condition".into(),
                });
            }
            let tt = infer(then_branch, env)?;
            match else_branch {
                Some(e) => {
                    let et = infer(e, env)?;
                    if !tt.compatible(&et) {
                        return Err(NrcError::TypeMismatch {
                            expected: tt.to_string(),
                            found: et.to_string(),
                            context: "if branches".into(),
                        });
                    }
                    Ok(tt.merge(&et))
                }
                None => expect_bag(tt, "if-then without else"),
            }
        }
        Expr::Prim { op, left, right } => {
            let lt = infer(left, env)?;
            let rt = infer(right, env)?;
            for (t, side) in [(&lt, "left"), (&rt, "right")] {
                if !matches!(
                    t,
                    Type::Scalar(ScalarType::Int) | Type::Scalar(ScalarType::Real) | Type::Unknown
                ) {
                    return Err(NrcError::TypeMismatch {
                        expected: "numeric".into(),
                        found: t.to_string(),
                        context: format!("{} operand of {}", side, op.symbol()),
                    });
                }
            }
            if *op == PrimOp::Div {
                return Ok(Type::real());
            }
            if lt == Type::real() || rt == Type::real() {
                Ok(Type::real())
            } else if lt == Type::int() && rt == Type::int() {
                Ok(Type::int())
            } else {
                Ok(Type::Unknown)
            }
        }
        Expr::Cmp { left, right, .. } => {
            let lt = infer(left, env)?;
            let rt = infer(right, env)?;
            if lt.is_bag() || rt.is_bag() {
                return Err(NrcError::TypeMismatch {
                    expected: "scalar".into(),
                    found: "bag".into(),
                    context: "comparison".into(),
                });
            }
            Ok(Type::boolean())
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            for e in [a, b] {
                let t = infer(e, env)?;
                if !t.compatible(&Type::boolean()) {
                    return Err(NrcError::TypeMismatch {
                        expected: "bool".into(),
                        found: t.to_string(),
                        context: "boolean operator".into(),
                    });
                }
            }
            Ok(Type::boolean())
        }
        Expr::Not(e) => {
            let t = infer(e, env)?;
            if !t.compatible(&Type::boolean()) {
                return Err(NrcError::TypeMismatch {
                    expected: "bool".into(),
                    found: t.to_string(),
                    context: "negation".into(),
                });
            }
            Ok(Type::boolean())
        }
        Expr::Dedup(e) => {
            let t = infer(e, env)?;
            let t = expect_bag(t, "dedup")?;
            if !t.is_flat_bag() && !matches!(t, Type::Bag(ref inner) if **inner == Type::Unknown) {
                return Err(NrcError::TypeMismatch {
                    expected: "flat bag".into(),
                    found: t.to_string(),
                    context: "dedup".into(),
                });
            }
            Ok(t)
        }
        Expr::GroupBy {
            input,
            key,
            group_attr,
        } => {
            let t = expect_bag(infer(input, env)?, "groupBy input")?;
            let elem = t.bag_elem().cloned().unwrap_or(Type::Unknown);
            match elem {
                Type::Tuple(tt) => {
                    check_flat_keys(&tt, key, "groupBy")?;
                    let mut out_fields: Vec<(String, Type)> = Vec::new();
                    let mut group_fields: Vec<(String, Type)> = Vec::new();
                    for (n, ft) in &tt.fields {
                        if key.contains(n) {
                            out_fields.push((n.clone(), ft.clone()));
                        } else {
                            group_fields.push((n.clone(), ft.clone()));
                        }
                    }
                    out_fields.push((
                        group_attr.clone(),
                        Type::bag(Type::Tuple(TupleType {
                            fields: group_fields,
                        })),
                    ));
                    Ok(Type::bag(Type::Tuple(TupleType { fields: out_fields })))
                }
                Type::Unknown => Ok(Type::bag(Type::Unknown)),
                other => Err(NrcError::TypeMismatch {
                    expected: "bag of tuples".into(),
                    found: other.to_string(),
                    context: "groupBy".into(),
                }),
            }
        }
        Expr::SumBy { input, key, values } => {
            let t = expect_bag(infer(input, env)?, "sumBy input")?;
            let elem = t.bag_elem().cloned().unwrap_or(Type::Unknown);
            match elem {
                Type::Tuple(tt) => {
                    check_flat_keys(&tt, key, "sumBy")?;
                    let mut out_fields: Vec<(String, Type)> = Vec::new();
                    for (n, ft) in &tt.fields {
                        if key.contains(n) {
                            out_fields.push((n.clone(), ft.clone()));
                        } else if values.contains(n) {
                            if !matches!(
                                ft,
                                Type::Scalar(ScalarType::Int)
                                    | Type::Scalar(ScalarType::Real)
                                    | Type::Unknown
                            ) {
                                return Err(NrcError::TypeMismatch {
                                    expected: "numeric".into(),
                                    found: ft.to_string(),
                                    context: format!("sumBy value attribute {n}"),
                                });
                            }
                            out_fields.push((n.clone(), ft.clone()));
                        }
                    }
                    Ok(Type::bag(Type::Tuple(TupleType { fields: out_fields })))
                }
                Type::Unknown => Ok(Type::bag(Type::Unknown)),
                other => Err(NrcError::TypeMismatch {
                    expected: "bag of tuples".into(),
                    found: other.to_string(),
                    context: "sumBy".into(),
                }),
            }
        }
        Expr::NewLabel { .. } => Ok(Type::Label),
        Expr::MatchLabel {
            label,
            body,
            params,
            ..
        } => {
            let lt = infer(label, env)?;
            if !lt.compatible(&Type::Label) {
                return Err(NrcError::TypeMismatch {
                    expected: "Label".into(),
                    found: lt.to_string(),
                    context: "match label".into(),
                });
            }
            // Captured values are flat but their precise types are unknown at
            // this point; bind them as Unknown.
            let mut inner = env.clone();
            for p in params {
                inner.bind(p.clone(), Type::Unknown);
            }
            infer(body, &inner)
        }
        Expr::Lambda { param, body } => {
            let mut inner = env.clone();
            inner.bind(param.clone(), Type::Label);
            let bt = infer(body, &inner)?;
            let elem = bt.bag_elem().cloned().unwrap_or(Type::Unknown);
            Ok(Type::dict(elem))
        }
        Expr::Lookup { dict, label } | Expr::MatLookup { dict, label } => {
            let lt = infer(label, env)?;
            if !lt.compatible(&Type::Label) {
                return Err(NrcError::TypeMismatch {
                    expected: "Label".into(),
                    found: lt.to_string(),
                    context: "dictionary lookup".into(),
                });
            }
            let dt = infer(dict, env)?;
            match dt {
                Type::Dict(inner) => Ok(Type::bag(*inner)),
                // A materialized dictionary is a bag of ⟨label, value⟩ tuples.
                Type::Bag(inner) => match inner.as_ref() {
                    Type::Tuple(tt) => match tt.field("value") {
                        Some(Type::Bag(v)) => Ok(Type::bag((**v).clone())),
                        _ => Ok(Type::bag(Type::Unknown)),
                    },
                    _ => Ok(Type::bag(Type::Unknown)),
                },
                Type::Unknown => Ok(Type::bag(Type::Unknown)),
                other => Err(NrcError::TypeMismatch {
                    expected: "dictionary".into(),
                    found: other.to_string(),
                    context: "dictionary lookup".into(),
                }),
            }
        }
        Expr::DictTreeUnion(a, b) => {
            let ta = infer(a, env)?;
            let tb = infer(b, env)?;
            Ok(ta.merge(&tb))
        }
        Expr::BagToDict(e) => {
            let t = expect_bag(infer(e, env)?, "BagToDict")?;
            match t.bag_elem() {
                Some(Type::Tuple(tt)) => match tt.field("value") {
                    Some(Type::Bag(v)) => Ok(Type::dict((**v).clone())),
                    _ => Ok(Type::dict(Type::Unknown)),
                },
                _ => Ok(Type::dict(Type::Unknown)),
            }
        }
    }
}

fn expect_bag(t: Type, context: &str) -> Result<Type> {
    match t {
        Type::Bag(_) => Ok(t),
        Type::Dict(inner) => Ok(Type::bag(Type::Tuple(TupleType::new([
            ("label".to_string(), Type::Label),
            ("value".to_string(), Type::bag(*inner)),
        ])))),
        Type::Unknown => Ok(Type::bag(Type::Unknown)),
        other => Err(NrcError::TypeMismatch {
            expected: "bag".into(),
            found: other.to_string(),
            context: context.to_string(),
        }),
    }
}

fn check_flat_keys(tt: &TupleType, key: &[String], context: &str) -> Result<()> {
    for k in key {
        match tt.field(k) {
            None => {
                return Err(NrcError::UnknownField {
                    field: k.clone(),
                    context: format!("{context} key"),
                })
            }
            Some(t) if t.is_bag() || t.is_tuple() => {
                return Err(NrcError::TypeMismatch {
                    expected: "flat (scalar or label) key".into(),
                    found: t.to_string(),
                    context: format!("{context} key {k}"),
                })
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn cop_env() -> TypeEnv {
        TypeEnv::from_bindings([
            (
                "COP",
                Type::bag_of([
                    ("cname", Type::string()),
                    (
                        "corders",
                        Type::bag_of([
                            ("odate", Type::date()),
                            (
                                "oparts",
                                Type::bag_of([("pid", Type::int()), ("qty", Type::real())]),
                            ),
                        ]),
                    ),
                ]),
            ),
            (
                "Part",
                Type::bag_of([
                    ("pid", Type::int()),
                    ("pname", Type::string()),
                    ("price", Type::real()),
                ]),
            ),
        ])
    }

    #[test]
    fn infers_nested_projection_types() {
        let env = cop_env();
        let e = forin(
            "c",
            var("COP"),
            singleton(tuple([("orders", proj(var("c"), "corders"))])),
        );
        let t = infer(&e, &env).unwrap();
        let elem = t.bag_elem().unwrap().as_tuple().unwrap();
        assert!(elem.field("orders").unwrap().is_bag());
    }

    #[test]
    fn rejects_unbound_variables_and_bad_fields() {
        let env = cop_env();
        assert!(matches!(
            infer(&var("Missing"), &env),
            Err(NrcError::UnboundVariable(_))
        ));
        let e = forin("c", var("COP"), singleton(proj(var("c"), "nope")));
        assert!(matches!(
            infer(&e, &env),
            Err(NrcError::UnknownField { .. })
        ));
    }

    #[test]
    fn sum_by_requires_numeric_values() {
        let env = cop_env();
        let bad = sum_by(var("Part"), &["pid"], &["pname"]);
        assert!(infer(&bad, &env).is_err());
        let good = sum_by(var("Part"), &["pname"], &["price"]);
        let t = infer(&good, &env).unwrap();
        let elem = t.bag_elem().unwrap().as_tuple().unwrap();
        assert_eq!(elem.field("price"), Some(&Type::real()));
        assert!(
            elem.field("pid").is_none(),
            "non-key non-value attrs dropped"
        );
    }

    #[test]
    fn group_by_produces_bag_valued_group_attribute() {
        let env = cop_env();
        let e = group_by(var("Part"), &["pname"], "group");
        let t = infer(&e, &env).unwrap();
        let elem = t.bag_elem().unwrap().as_tuple().unwrap();
        assert!(elem.field("group").unwrap().is_bag());
    }

    #[test]
    fn grouping_on_bag_valued_key_is_rejected() {
        let env = cop_env();
        let e = group_by(var("COP"), &["corders"], "group");
        assert!(infer(&e, &env).is_err());
    }

    #[test]
    fn comparisons_on_bags_are_rejected() {
        let env = cop_env();
        let e = cmp_eq(var("Part"), var("Part"));
        assert!(infer(&e, &env).is_err());
    }

    #[test]
    fn running_example_typechecks() {
        let env = cop_env();
        let q = forin(
            "cop",
            var("COP"),
            singleton(tuple([
                ("cname", proj(var("cop"), "cname")),
                (
                    "corders",
                    forin(
                        "co",
                        proj(var("cop"), "corders"),
                        singleton(tuple([
                            ("odate", proj(var("co"), "odate")),
                            (
                                "oparts",
                                sum_by(
                                    forin(
                                        "op",
                                        proj(var("co"), "oparts"),
                                        forin(
                                            "p",
                                            var("Part"),
                                            ifthen(
                                                cmp_eq(
                                                    proj(var("op"), "pid"),
                                                    proj(var("p"), "pid"),
                                                ),
                                                singleton(tuple([
                                                    ("pname", proj(var("p"), "pname")),
                                                    (
                                                        "total",
                                                        mul(
                                                            proj(var("op"), "qty"),
                                                            proj(var("p"), "price"),
                                                        ),
                                                    ),
                                                ])),
                                            ),
                                        ),
                                    ),
                                    &["pname"],
                                    &["total"],
                                ),
                            ),
                        ])),
                    ),
                ),
            ])),
        );
        let t = infer(&q, &env).unwrap();
        assert!(t.is_bag());
        let c = t.bag_elem().unwrap().as_tuple().unwrap();
        assert_eq!(c.field("cname"), Some(&Type::string()));
        let orders = c
            .field("corders")
            .unwrap()
            .bag_elem()
            .unwrap()
            .as_tuple()
            .unwrap();
        let oparts = orders.field("oparts").unwrap();
        assert!(oparts.is_flat_bag());
    }
}
