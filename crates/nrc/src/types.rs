//! The NRC type system (Figure 1 of the paper).
//!
//! Types are built from scalar types, tuple types and bag types, plus the two
//! extensions used by the shredded pipeline: the atomic `Label` type and the
//! dictionary type `Label -> Bag(F)`.

use std::fmt;

/// Scalar (atomic) types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 64-bit integers.
    Int,
    /// 64-bit IEEE-754 reals.
    Real,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
    /// Dates (days since an arbitrary epoch).
    Date,
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::Int => write!(f, "int"),
            ScalarType::Real => write!(f, "real"),
            ScalarType::Str => write!(f, "string"),
            ScalarType::Bool => write!(f, "bool"),
            ScalarType::Date => write!(f, "date"),
        }
    }
}

/// A named, ordered collection of attribute types.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TupleType {
    /// Attribute name / type pairs, in declaration order.
    pub fields: Vec<(String, Type)>,
}

impl TupleType {
    /// Creates a tuple type from `(name, type)` pairs.
    pub fn new<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        TupleType {
            fields: fields.into_iter().map(|(n, t)| (n.into(), t)).collect(),
        }
    }

    /// Looks up the type of attribute `name`, if present.
    pub fn field(&self, name: &str) -> Option<&Type> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Names of all attributes in order.
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// True when every attribute has scalar type, i.e. the tuple is flat.
    pub fn is_flat(&self) -> bool {
        self.fields
            .iter()
            .all(|(_, t)| t.is_scalar() || matches!(t, Type::Label))
    }
}

/// NRC types (`T` in Figure 1), extended with `Label` and dictionary types for
/// the shredded pipeline (NRC^{Lbl+λ}).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar type.
    Scalar(ScalarType),
    /// A tuple type `⟨a1 : T1, …, an : Tn⟩`.
    Tuple(TupleType),
    /// A bag type `Bag(F)`.
    Bag(Box<Type>),
    /// The atomic label type used by the shredded representation.
    Label,
    /// A dictionary type `Label -> Bag(F)`; the payload is the element type of
    /// the bag the dictionary maps each label to.
    Dict(Box<Type>),
    /// A type that is not yet known (used during inference of empty bags).
    Unknown,
}

impl Type {
    /// Shorthand for the `int` scalar type.
    pub fn int() -> Type {
        Type::Scalar(ScalarType::Int)
    }
    /// Shorthand for the `real` scalar type.
    pub fn real() -> Type {
        Type::Scalar(ScalarType::Real)
    }
    /// Shorthand for the `string` scalar type.
    pub fn string() -> Type {
        Type::Scalar(ScalarType::Str)
    }
    /// Shorthand for the `bool` scalar type.
    pub fn boolean() -> Type {
        Type::Scalar(ScalarType::Bool)
    }
    /// Shorthand for the `date` scalar type.
    pub fn date() -> Type {
        Type::Scalar(ScalarType::Date)
    }
    /// A bag of the given element type.
    pub fn bag(elem: Type) -> Type {
        Type::Bag(Box::new(elem))
    }
    /// A bag of tuples built from `(name, type)` pairs.
    pub fn bag_of<I, S>(fields: I) -> Type
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        Type::bag(Type::Tuple(TupleType::new(fields)))
    }
    /// A tuple type built from `(name, type)` pairs.
    pub fn tuple<I, S>(fields: I) -> Type
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        Type::Tuple(TupleType::new(fields))
    }
    /// A dictionary mapping labels to bags of `elem`.
    pub fn dict(elem: Type) -> Type {
        Type::Dict(Box::new(elem))
    }

    /// True for scalar types.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Scalar(_))
    }

    /// True for bag types.
    pub fn is_bag(&self) -> bool {
        matches!(self, Type::Bag(_))
    }

    /// True for tuple types.
    pub fn is_tuple(&self) -> bool {
        matches!(self, Type::Tuple(_))
    }

    /// Element type of a bag type, if this is one.
    pub fn bag_elem(&self) -> Option<&Type> {
        match self {
            Type::Bag(e) => Some(e),
            _ => None,
        }
    }

    /// Tuple type view, if this is a tuple type.
    pub fn as_tuple(&self) -> Option<&TupleType> {
        match self {
            Type::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// A *flat bag* is a bag of tuples whose attributes are all scalars (or
    /// labels). This is the shape required by `dedup`, `groupBy` and `sumBy`
    /// keys, and the shape every shredded collection has.
    pub fn is_flat_bag(&self) -> bool {
        match self {
            Type::Bag(inner) => match inner.as_ref() {
                Type::Tuple(t) => t.is_flat(),
                Type::Scalar(_) | Type::Label => true,
                _ => false,
            },
            _ => false,
        }
    }

    /// Structural compatibility check that treats `Unknown` as a wildcard.
    pub fn compatible(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Unknown, _) | (_, Type::Unknown) => true,
            (Type::Scalar(a), Type::Scalar(b)) => a == b,
            (Type::Label, Type::Label) => true,
            (Type::Bag(a), Type::Bag(b)) => a.compatible(b),
            (Type::Dict(a), Type::Dict(b)) => a.compatible(b),
            (Type::Tuple(a), Type::Tuple(b)) => {
                a.fields.len() == b.fields.len()
                    && a.fields
                        .iter()
                        .zip(&b.fields)
                        .all(|((n1, t1), (n2, t2))| n1 == n2 && t1.compatible(t2))
            }
            _ => false,
        }
    }

    /// Merges two compatible types, preferring the more specific one.
    pub fn merge(&self, other: &Type) -> Type {
        match (self, other) {
            (Type::Unknown, t) => t.clone(),
            (t, Type::Unknown) => t.clone(),
            (Type::Bag(a), Type::Bag(b)) => Type::Bag(Box::new(a.merge(b))),
            (Type::Dict(a), Type::Dict(b)) => Type::Dict(Box::new(a.merge(b))),
            (Type::Tuple(a), Type::Tuple(b)) if a.fields.len() == b.fields.len() => {
                Type::Tuple(TupleType {
                    fields: a
                        .fields
                        .iter()
                        .zip(&b.fields)
                        .map(|((n, t1), (_, t2))| (n.clone(), t1.merge(t2)))
                        .collect(),
                })
            }
            _ => self.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Tuple(t) => {
                write!(f, "<")?;
                for (i, (n, ty)) in t.fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {ty}")?;
                }
                write!(f, ">")
            }
            Type::Bag(e) => write!(f, "Bag({e})"),
            Type::Label => write!(f, "Label"),
            Type::Dict(e) => write!(f, "Label -> Bag({e})"),
            Type::Unknown => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cop_type() -> Type {
        Type::bag_of([
            ("cname", Type::string()),
            (
                "corders",
                Type::bag_of([
                    ("odate", Type::date()),
                    (
                        "oparts",
                        Type::bag_of([("pid", Type::int()), ("qty", Type::real())]),
                    ),
                ]),
            ),
        ])
    }

    #[test]
    fn nested_type_construction_and_lookup() {
        let t = cop_type();
        let elem = t.bag_elem().unwrap().as_tuple().unwrap();
        assert_eq!(elem.field("cname"), Some(&Type::string()));
        assert!(elem.field("corders").unwrap().is_bag());
        assert!(elem.field("missing").is_none());
    }

    #[test]
    fn flat_bag_detection() {
        let flat = Type::bag_of([("pid", Type::int()), ("qty", Type::real())]);
        assert!(flat.is_flat_bag());
        assert!(!cop_type().is_flat_bag());
        let with_label = Type::bag_of([("cname", Type::string()), ("corders", Type::Label)]);
        assert!(with_label.is_flat_bag(), "labels count as flat attributes");
    }

    #[test]
    fn compatibility_treats_unknown_as_wildcard() {
        let a = Type::bag(Type::Unknown);
        let b = Type::bag_of([("x", Type::int())]);
        assert!(a.compatible(&b));
        assert_eq!(a.merge(&b), b);
        assert!(!Type::int().compatible(&Type::real()));
    }

    #[test]
    fn display_round_trips_structure() {
        let t = cop_type();
        let s = format!("{t}");
        assert!(s.contains("cname: string"));
        assert!(s.contains("Bag(<odate: date"));
    }
}
