//! Runtime values of the nested data model.
//!
//! `Value` is the dynamic representation used by the local evaluator, the
//! distributed engine, the shredder, and the benchmark generators. Values are
//! totally ordered and hashable so that any flat value can serve as a grouping
//! or join key (reals are ordered by their IEEE-754 bit pattern after NaN
//! normalisation, which is sufficient for key semantics).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{NrcError, Result};
use crate::types::{ScalarType, TupleType, Type};

/// A label identifies one inner bag in the shredded representation.
///
/// Following NRC^{Lbl+λ}, a label created by `NewLabel(x1, …, xn)` records the
/// *construction site* (each syntactic `NewLabel` occurrence gets a unique
/// site id, assigned by the shredder) and the flat values captured at that
/// site. `match l = NewLabel(x) then e` deconstructs a label by checking the
/// site and binding the captured values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label {
    /// Identifier of the `NewLabel` construction site.
    pub site: u32,
    /// Flat values captured by the label, in construction order.
    pub values: Arc<Vec<Value>>,
}

impl Label {
    /// Creates a label for `site` capturing `values`.
    pub fn new(site: u32, values: Vec<Value>) -> Self {
        Label {
            site,
            values: Arc::new(values),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}(", self.site)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A tuple value: ordered attribute/value pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    fields: Vec<(String, Value)>,
}

impl Tuple {
    /// Creates a tuple from `(name, value)` pairs, keeping their order.
    pub fn new<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Tuple {
            fields: fields.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }

    /// An empty tuple `⟨⟩`.
    pub fn empty() -> Self {
        Tuple { fields: Vec::new() }
    }

    /// Looks up attribute `name`.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks up attribute `name`, returning an error mentioning `context`.
    pub fn get_or_err(&self, name: &str, context: &str) -> Result<&Value> {
        self.get(name).ok_or_else(|| NrcError::UnknownField {
            field: name.to_string(),
            context: context.to_string(),
        })
    }

    /// Adds or replaces attribute `name`.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        if let Some(slot) = self.fields.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.fields.push((name, value));
        }
    }

    /// Removes attribute `name` if present, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|(n, _)| n == name)?;
        Some(self.fields.remove(idx).1)
    }

    /// Returns a new tuple containing only the attributes in `names`
    /// (in the order of `names`, skipping missing ones).
    pub fn project(&self, names: &[&str]) -> Tuple {
        Tuple {
            fields: names
                .iter()
                .zip(self.project_values(names))
                .filter_map(|(n, v)| v.map(|v| (n.to_string(), v.clone())))
                .collect(),
        }
    }

    /// Batch accessor: looks up every name in `names` in a **single pass**
    /// over the tuple's attributes, returning the values in `names` order
    /// (`None` for missing attributes).
    ///
    /// Per-row per-column [`Tuple::get`] calls in hot loops (row
    /// finalization, join key extraction, grouping) are O(fields) each; this
    /// replaces `names.len()` scans with one.
    pub fn project_values<'a, S: AsRef<str>>(&'a self, names: &[S]) -> Vec<Option<&'a Value>> {
        let mut out: Vec<Option<&Value>> = vec![None; names.len()];
        let mut unfilled = names.len();
        for (n, v) in &self.fields {
            if unfilled == 0 {
                break;
            }
            for (slot, name) in out.iter_mut().zip(names) {
                if slot.is_none() && name.as_ref() == n {
                    *slot = Some(v);
                    unfilled -= 1;
                }
            }
        }
        out
    }

    /// Returns a new tuple with the attributes in `names` removed.
    pub fn project_away(&self, names: &[&str]) -> Tuple {
        Tuple {
            fields: self
                .fields
                .iter()
                .filter(|(n, _)| !names.contains(&n.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Concatenates two tuples; attributes of `other` overwrite same-named
    /// attributes of `self`.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut out = self.clone();
        for (n, v) in &other.fields {
            out.set(n.clone(), v.clone());
        }
        out
    }

    /// Iterator over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Immutable view of the `(name, value)` pairs in attribute order — the
    /// converter entry point used by columnar batch builders, which need
    /// indexed access to a row's fields without the iterator adaptor.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// Attribute names in order.
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the tuple has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Consumes the tuple, returning its fields.
    pub fn into_fields(self) -> Vec<(String, Value)> {
        self.fields
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, (n, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {v}")?;
        }
        write!(f, ">")
    }
}

/// A bag (multiset) value, represented as a vector of elements.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bag {
    items: Vec<Value>,
}

impl Bag {
    /// Creates a bag from the given elements.
    pub fn new(items: Vec<Value>) -> Self {
        Bag { items }
    }

    /// The empty bag.
    pub fn empty() -> Self {
        Bag { items: Vec::new() }
    }

    /// Creates a singleton bag.
    pub fn singleton(v: Value) -> Self {
        Bag { items: vec![v] }
    }

    /// Appends an element.
    pub fn push(&mut self, v: Value) {
        self.items.push(v);
    }

    /// Appends all elements of `other`.
    pub fn extend(&mut self, other: Bag) {
        self.items.extend(other.items);
    }

    /// Number of elements (with multiplicity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the bag has no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Immutable view of the elements.
    pub fn items(&self) -> &[Value] {
        &self.items
    }

    /// Iterator over the elements.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.items.iter()
    }

    /// Consumes the bag, returning its elements.
    pub fn into_items(self) -> Vec<Value> {
        self.items
    }

    /// Multiset-equality: true when both bags contain the same elements with
    /// the same multiplicities, irrespective of order.
    pub fn multiset_eq(&self, other: &Bag) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut a = self.items.clone();
        let mut b = other.items.clone();
        a.sort();
        b.sort();
        a == b
    }
}

impl FromIterator<Value> for Bag {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Bag {
            items: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Bag {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// A dynamically typed value of the nested data model.
#[derive(Debug, Clone)]
pub enum Value {
    /// The NULL value introduced by outer joins / outer unnests.
    Null,
    /// Boolean scalar.
    Bool(bool),
    /// 64-bit integer scalar.
    Int(i64),
    /// 64-bit floating point scalar.
    Real(f64),
    /// String scalar.
    Str(String),
    /// Date scalar, stored as days since an arbitrary epoch.
    Date(i64),
    /// A label (shredded representation only).
    Label(Label),
    /// A tuple of named values.
    Tuple(Tuple),
    /// A bag of values.
    Bag(Bag),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for tuple values.
    pub fn tuple<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Tuple(Tuple::new(fields))
    }

    /// Convenience constructor for bag values.
    pub fn bag(items: Vec<Value>) -> Value {
        Value::Bag(Bag::new(items))
    }

    /// The empty bag.
    pub fn empty_bag() -> Value {
        Value::Bag(Bag::empty())
    }

    /// True for scalar values (including NULL, dates and labels).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Value::Tuple(_) | Value::Bag(_))
    }

    /// Views this value as a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Null => Ok(false),
            other => Err(NrcError::TypeMismatch {
                expected: "bool".into(),
                found: other.kind().into(),
                context: "as_bool".into(),
            }),
        }
    }

    /// Views this value as an integer.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Date(d) => Ok(*d),
            Value::Null => Ok(0),
            other => Err(NrcError::TypeMismatch {
                expected: "int".into(),
                found: other.kind().into(),
                context: "as_int".into(),
            }),
        }
    }

    /// Views this value as a real number (integers are widened).
    pub fn as_real(&self) -> Result<f64> {
        match self {
            Value::Real(r) => Ok(*r),
            Value::Int(i) => Ok(*i as f64),
            Value::Null => Ok(0.0),
            other => Err(NrcError::TypeMismatch {
                expected: "real".into(),
                found: other.kind().into(),
                context: "as_real".into(),
            }),
        }
    }

    /// Views this value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(NrcError::TypeMismatch {
                expected: "string".into(),
                found: other.kind().into(),
                context: "as_str".into(),
            }),
        }
    }

    /// Views this value as a tuple.
    pub fn as_tuple(&self) -> Result<&Tuple> {
        match self {
            Value::Tuple(t) => Ok(t),
            other => Err(NrcError::TypeMismatch {
                expected: "tuple".into(),
                found: other.kind().into(),
                context: "as_tuple".into(),
            }),
        }
    }

    /// Mutable tuple view.
    pub fn as_tuple_mut(&mut self) -> Result<&mut Tuple> {
        match self {
            Value::Tuple(t) => Ok(t),
            other => Err(NrcError::TypeMismatch {
                expected: "tuple".into(),
                found: other.kind().into(),
                context: "as_tuple_mut".into(),
            }),
        }
    }

    /// Views this value as a bag. NULL is viewed as the empty bag, matching
    /// the paper's treatment of NULLs produced by outer operators.
    pub fn as_bag(&self) -> Result<&Bag> {
        match self {
            Value::Bag(b) => Ok(b),
            other => Err(NrcError::TypeMismatch {
                expected: "bag".into(),
                found: other.kind().into(),
                context: "as_bag".into(),
            }),
        }
    }

    /// Consumes this value, returning the contained bag; NULL becomes the
    /// empty bag.
    pub fn into_bag(self) -> Result<Bag> {
        match self {
            Value::Bag(b) => Ok(b),
            Value::Null => Ok(Bag::empty()),
            other => Err(NrcError::TypeMismatch {
                expected: "bag".into(),
                found: other.kind().into(),
                context: "into_bag".into(),
            }),
        }
    }

    /// Views this value as a label.
    pub fn as_label(&self) -> Result<&Label> {
        match self {
            Value::Label(l) => Ok(l),
            other => Err(NrcError::TypeMismatch {
                expected: "label".into(),
                found: other.kind().into(),
                context: "as_label".into(),
            }),
        }
    }

    /// A short human-readable name of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::Date(_) => "date",
            Value::Label(_) => "label",
            Value::Tuple(_) => "tuple",
            Value::Bag(_) => "bag",
        }
    }

    /// Scalar type of this value, when it is a scalar.
    pub fn scalar_type(&self) -> Option<ScalarType> {
        match self {
            Value::Bool(_) => Some(ScalarType::Bool),
            Value::Int(_) => Some(ScalarType::Int),
            Value::Real(_) => Some(ScalarType::Real),
            Value::Str(_) => Some(ScalarType::Str),
            Value::Date(_) => Some(ScalarType::Date),
            _ => None,
        }
    }

    /// Infers the (structural) type of a value; bags infer their element type
    /// from the first element.
    pub fn infer_type(&self) -> Type {
        match self {
            Value::Null => Type::Unknown,
            Value::Bool(_) => Type::boolean(),
            Value::Int(_) => Type::int(),
            Value::Real(_) => Type::real(),
            Value::Str(_) => Type::string(),
            Value::Date(_) => Type::date(),
            Value::Label(_) => Type::Label,
            Value::Tuple(t) => Type::Tuple(TupleType::new(
                t.iter().map(|(n, v)| (n.to_string(), v.infer_type())),
            )),
            Value::Bag(b) => match b.items().first() {
                Some(v) => Type::bag(v.infer_type()),
                None => Type::bag(Type::Unknown),
            },
        }
    }

    /// The numeric zero of the same flavour as `self` (used when casting NULL
    /// under a `Γ+` aggregate).
    pub fn zero_like(&self) -> Value {
        match self {
            Value::Real(_) => Value::Real(0.0),
            _ => Value::Int(0),
        }
    }

    /// Adds two numeric values, widening to real when either side is real.
    pub fn numeric_add(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Null, v) | (v, Value::Null) => Ok(v.clone()),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
            _ => Ok(Value::Real(self.as_real()? + other.as_real()?)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn kind_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Real(_) => 3,
        Value::Str(_) => 4,
        Value::Date(_) => 5,
        Value::Label(_) => 6,
        Value::Tuple(_) => 7,
        Value::Bag(_) => 8,
    }
}

fn normalize_real(r: f64) -> u64 {
    // Total order on reals via bit pattern; normalise NaN and -0.0 so that
    // equal keys hash equally.
    if r.is_nan() {
        f64::NAN.to_bits()
    } else if r == 0.0 {
        0f64.to_bits()
    } else {
        let bits = r.to_bits();
        if r.is_sign_negative() {
            !bits
        } else {
            bits | (1 << 63)
        }
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => normalize_real(*a).cmp(&normalize_real(*b)),
            (Value::Int(a), Value::Real(b)) => normalize_real(*a as f64).cmp(&normalize_real(*b)),
            (Value::Real(a), Value::Int(b)) => normalize_real(*a).cmp(&normalize_real(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Label(a), Value::Label(b)) => a.cmp(b),
            (Value::Tuple(a), Value::Tuple(b)) => a.cmp(b),
            (Value::Bag(a), Value::Bag(b)) => a.cmp(b),
            _ => kind_rank(self).cmp(&kind_rank(other)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and reals that compare equal must hash equally; hash both
            // through the normalised real representation when the value is
            // numeric.
            Value::Int(i) => {
                2u8.hash(state);
                normalize_real(*i as f64).hash(state);
            }
            Value::Real(r) => {
                2u8.hash(state);
                normalize_real(*r).hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                5u8.hash(state);
                d.hash(state);
            }
            Value::Label(l) => {
                6u8.hash(state);
                l.hash(state);
            }
            Value::Tuple(t) => {
                7u8.hash(state);
                for (n, v) in t.iter() {
                    n.hash(state);
                    v.hash(state);
                }
            }
            Value::Bag(b) => {
                8u8.hash(state);
                b.len().hash(state);
                for v in b.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Date(d) => write!(f, "date({d})"),
            Value::Label(l) => write!(f, "{l}"),
            Value::Tuple(t) => write!(f, "{t}"),
            Value::Bag(b) => write!(f, "{b}"),
        }
    }
}

/// Estimate of a value's in-memory footprint in bytes.
///
/// Used by the distributed engine to meter shuffle volume and enforce the
/// per-worker memory caps that reproduce the paper's FAIL runs.
pub trait MemSize {
    /// Approximate number of bytes this value occupies.
    fn mem_size(&self) -> usize;
}

impl MemSize for Value {
    fn mem_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 8,
            Value::Int(_) | Value::Real(_) | Value::Date(_) => 8,
            Value::Str(s) => 24 + s.len(),
            Value::Label(l) => 8 + l.values.iter().map(MemSize::mem_size).sum::<usize>(),
            Value::Tuple(t) => t.mem_size(),
            Value::Bag(b) => b.mem_size(),
        }
    }
}

/// Tuples charge 16 bytes of structure plus, per attribute, the name bytes,
/// an 8-byte slot and the value itself. Exposed directly (not only through
/// [`Value`]) so columnar converters can account for the row-equivalent size
/// of data they no longer store as tuples.
impl MemSize for Tuple {
    fn mem_size(&self) -> usize {
        16 + self
            .iter()
            .map(|(n, v)| n.len() + 8 + v.mem_size())
            .sum::<usize>()
    }
}

/// Bags charge 24 bytes of structure plus their elements.
impl MemSize for Bag {
    fn mem_size(&self) -> usize {
        24 + self.iter().map(MemSize::mem_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn tuple_access_and_projection() {
        let t = Tuple::new([
            ("pid", Value::Int(7)),
            ("qty", Value::Real(2.5)),
            ("name", Value::str("bolt")),
        ]);
        assert_eq!(t.get("pid"), Some(&Value::Int(7)));
        assert_eq!(
            t.project(&["name", "pid"]).field_names(),
            vec!["name", "pid"]
        );
        assert_eq!(t.project_away(&["qty"]).len(), 2);
        assert_eq!(
            t.project_values(&["qty", "missing", "pid"]),
            vec![Some(&Value::Real(2.5)), None, Some(&Value::Int(7))]
        );
        let mut t2 = t.clone();
        t2.set("qty", Value::Real(9.0));
        assert_eq!(t2.get("qty"), Some(&Value::Real(9.0)));
    }

    #[test]
    fn int_real_key_equivalence() {
        // Keys that compare equal must hash equal (groupBy correctness).
        let mut m: HashMap<Value, i32> = HashMap::new();
        m.insert(Value::Int(3), 1);
        *m.entry(Value::Real(3.0)).or_insert(0) += 1;
        assert_eq!(m.len(), 1);
        assert_eq!(m[&Value::Int(3)], 2);
    }

    #[test]
    fn bag_multiset_equality_ignores_order() {
        let a = Bag::new(vec![Value::Int(1), Value::Int(2), Value::Int(2)]);
        let b = Bag::new(vec![Value::Int(2), Value::Int(1), Value::Int(2)]);
        let c = Bag::new(vec![Value::Int(1), Value::Int(2)]);
        assert!(a.multiset_eq(&b));
        assert!(!a.multiset_eq(&c));
    }

    #[test]
    fn labels_compare_by_site_and_captures() {
        let l1 = Label::new(1, vec![Value::Int(10)]);
        let l2 = Label::new(1, vec![Value::Int(10)]);
        let l3 = Label::new(2, vec![Value::Int(10)]);
        assert_eq!(Value::Label(l1.clone()), Value::Label(l2));
        assert_ne!(Value::Label(l1), Value::Label(l3));
    }

    #[test]
    fn null_coerces_to_neutral_values() {
        assert!(!Value::Null.as_bool().unwrap());
        assert_eq!(Value::Null.as_real().unwrap(), 0.0);
        assert!(Value::Null.clone().into_bag().unwrap().is_empty());
    }

    #[test]
    fn mem_size_grows_with_structure() {
        let small = Value::Int(1);
        let big = Value::bag(vec![Value::tuple([("a", Value::str("hello world"))]); 10]);
        assert!(big.mem_size() > small.mem_size() * 10);
    }

    #[test]
    fn infer_type_of_nested_value() {
        let v = Value::bag(vec![Value::tuple([
            ("cname", Value::str("c1")),
            (
                "corders",
                Value::bag(vec![Value::tuple([("odate", Value::Date(1))])]),
            ),
        ])]);
        let t = v.infer_type();
        assert!(t.is_bag());
        let tt = t.bag_elem().unwrap().as_tuple().unwrap();
        assert!(tt.field("corders").unwrap().is_bag());
    }
}
