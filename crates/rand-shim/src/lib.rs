//! # trance-rand-shim
//!
//! A tiny, dependency-free stand-in for the subset of the `rand` crate API
//! that the workspace's data generators use (`StdRng`, `SeedableRng`,
//! `Rng::gen_range`, `Rng::gen_bool`). The workspace builds fully offline, so
//! the real `rand` cannot be fetched; consumers rename this package to `rand`
//! in their manifests and keep their imports unchanged.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the seeded benchmark generators require.
//! It is **not** a cryptographic RNG and does not reproduce the value streams
//! of the real `rand` crate.

#![warn(missing_docs)]

use std::ops::Range;

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring the used subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range` (which must be non-empty).
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with an empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, u16, u8);

impl SampleUniform for i64 {
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(
            range.start < range.end,
            "gen_range called with an empty range"
        );
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleUniform for i32 {
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        i64::sample(rng, range.start as i64..range.end as i64) as i32
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        range.start + unit_f64(rng.next_u64()) * (range.end - range.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
