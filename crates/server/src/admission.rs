//! Bounded, client-fair **admission control** over the shared worker pool.
//!
//! The engine serves many clients on one `DistContext`/`WorkerPool`; this
//! module decides *which query runs next*. At most `max_in_flight` queries
//! execute concurrently; beyond that, submissions wait in per-client FIFO
//! sub-queues granted in **round-robin order over clients**, so one chatty
//! client cannot starve the others — its second query waits behind every
//! other client's first. The total number of waiters is bounded by
//! `queue_capacity`: when the queue is full, [`AdmissionQueue::acquire`]
//! returns a typed rejection immediately (the engine surfaces it as
//! [`crate::ServeError::Busy`]) instead of buffering without bound.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A successful admission: how long the submission waited in the queue.
pub(crate) struct Admitted {
    pub queue_wait: Duration,
}

/// The queue-full rejection: the load observed at rejection time.
#[derive(Debug)]
pub(crate) struct Rejected {
    pub in_flight: usize,
    pub queued: usize,
}

#[derive(Default)]
struct AdmState {
    in_flight: usize,
    queued: usize,
    next_ticket: u64,
    /// FIFO of waiting tickets per client.
    waiters: BTreeMap<String, VecDeque<u64>>,
    /// Round-robin order over the clients that currently have waiters.
    rr: VecDeque<String>,
    /// Tickets granted a slot but not yet picked up by their thread.
    granted: HashSet<u64>,
}

pub(crate) struct AdmissionQueue {
    max_in_flight: usize,
    queue_capacity: usize,
    state: Mutex<AdmState>,
    cv: Condvar,
}

impl AdmissionQueue {
    pub fn new(max_in_flight: usize, queue_capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            max_in_flight: max_in_flight.max(1),
            queue_capacity,
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
        }
    }

    /// Acquires an execution slot for `client`, blocking fairly while the
    /// engine is saturated. Returns the typed rejection without blocking
    /// when the wait queue is already full. Every `Ok` must be paired with
    /// exactly one [`release`](AdmissionQueue::release).
    pub fn acquire(&self, client: &str) -> Result<Admitted, Rejected> {
        let t0 = Instant::now();
        let mut st = self.state.lock().unwrap();
        // Fast path only when nobody is waiting — a free slot with waiters
        // present belongs to the head of the round-robin, not to us.
        if st.in_flight < self.max_in_flight && st.queued == 0 {
            st.in_flight += 1;
            return Ok(Admitted {
                queue_wait: t0.elapsed(),
            });
        }
        if st.queued >= self.queue_capacity {
            return Err(Rejected {
                in_flight: st.in_flight,
                queued: st.queued,
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        let newly_waiting = {
            let q = st.waiters.entry(client.to_string()).or_default();
            let was_empty = q.is_empty();
            q.push_back(ticket);
            was_empty
        };
        if newly_waiting {
            st.rr.push_back(client.to_string());
        }
        st.queued += 1;
        self.grant_locked(&mut st);
        while !st.granted.remove(&ticket) {
            st = self.cv.wait(st).unwrap();
        }
        Ok(Admitted {
            queue_wait: t0.elapsed(),
        })
    }

    /// Returns an execution slot, granting it to the next waiter (fair
    /// round-robin across clients).
    pub fn release(&self) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(st.in_flight > 0, "release without a matching acquire");
        st.in_flight -= 1;
        self.grant_locked(&mut st);
    }

    /// Current load: `(in_flight, queued)`.
    pub fn depth(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap();
        (st.in_flight, st.queued)
    }

    fn grant_locked(&self, st: &mut AdmState) {
        let mut granted_any = false;
        while st.in_flight < self.max_in_flight && st.queued > 0 {
            let client = st.rr.pop_front().expect("queued > 0 implies rr nonempty");
            let q = st
                .waiters
                .get_mut(&client)
                .expect("rr client has a waiter queue");
            let ticket = q.pop_front().expect("rr client queue nonempty");
            if q.is_empty() {
                st.waiters.remove(&client);
            } else {
                st.rr.push_back(client);
            }
            st.granted.insert(ticket);
            st.queued -= 1;
            st.in_flight += 1;
            granted_any = true;
        }
        if granted_any {
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fast_path_grants_up_to_max() {
        let q = AdmissionQueue::new(2, 4);
        assert!(q.acquire("a").is_ok());
        assert!(q.acquire("b").is_ok());
        assert_eq!(q.depth(), (2, 0));
        q.release();
        q.release();
        assert_eq!(q.depth(), (0, 0));
    }

    #[test]
    fn queue_full_rejects_immediately() {
        let q = Arc::new(AdmissionQueue::new(1, 0));
        assert!(q.acquire("a").is_ok());
        let err = q.acquire("b").err().expect("zero-capacity queue rejects");
        assert_eq!(err.in_flight, 1);
        assert_eq!(err.queued, 0);
        q.release();
    }

    #[test]
    fn round_robin_interleaves_clients() {
        // One slot; client `a` floods, client `b` submits one. `b`'s query
        // must be granted before `a`'s *second*, despite arriving after it.
        let q = Arc::new(AdmissionQueue::new(1, 8));
        assert!(q.acquire("hold").is_ok());
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (client, delay_ms) in [("a", 0u64), ("a", 20), ("b", 40)] {
            let q = q.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(delay_ms));
                q.acquire(client).unwrap();
                order.lock().unwrap().push(client);
                q.release();
            }));
        }
        // Let all three enqueue behind the held slot, then free it.
        std::thread::sleep(Duration::from_millis(200));
        q.release();
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap().clone();
        assert_eq!(order, vec!["a", "b", "a"]);
    }
}
