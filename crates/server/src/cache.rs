//! The engine's **compiled-plan cache**: an LRU map from
//! [`trance_compiler::plan_cache_key`] to the [`PreparedQuery`] a cold run
//! captured.
//!
//! The key already folds in the table catalog's epoch, so invalidation is
//! free: any registration bumps the epoch, every old key stops being
//! looked up, and the stale entries age out of the LRU bound. The capacity
//! caps resident memory (prepared plans are plan trees, not data, but an
//! adversarial client could otherwise grow the map without bound).

use std::collections::HashMap;
use std::sync::Arc;

use trance_compiler::PreparedQuery;

struct Entry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

pub(crate) struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a prepared query, bumping its recency. Counts a hit or a
    /// miss — the engine's hit-rate metric reads these counters.
    pub fn get(&mut self, key: u64) -> Option<Arc<PreparedQuery>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(e.prepared.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly prepared query, evicting the least recently used
    /// entry when full. A zero-capacity cache stays empty (caching off).
    pub fn insert(&mut self, key: u64, prepared: Arc<PreparedQuery>) {
        if self.capacity == 0 {
            return;
        }
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.tick += 1;
        self.entries.insert(
            key,
            Entry {
                prepared,
                last_used: self.tick,
            },
        );
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The LRU payload (`PreparedQuery`) can only be built through
    // `prepare_and_run`, so insertion/eviction/recency are exercised with
    // real queries by the integration tests; here only the payload-free
    // bookkeeping is testable.
    #[test]
    fn empty_cache_misses() {
        let mut c = PlanCache::new(4);
        assert!(c.get(42).is_none());
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 0);
    }
}
