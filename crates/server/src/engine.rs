//! The embeddable query **engine**: one resident `DistContext`/worker pool
//! serving many clients' queries concurrently.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use trance_algebra::Catalog;
use trance_compiler::columnar::exact_schema_col;
use trance_compiler::{
    collect_unshredded, ingest_env, plan_cache_key, prepare_and_run, run_prepared,
    strategy_options, KernelCache, QuerySpec, RunResult, Strategy,
};
use trance_dist::{ClusterConfig, ColCollection, DistContext, ExecError, StatsSnapshot};
use trance_nrc::{Bag, Type, TypeEnv};
use trance_shred::{
    flat_input_name, input_dict_name, nesting_structure, shred_value, NestingStructure,
    ShreddedInputDecl,
};

use crate::admission::AdmissionQueue;
use crate::cache::PlanCache;

/// Engine construction knobs. `cluster` configures the shared worker pool;
/// the rest bound concurrency and cache residency.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The cluster the resident worker pool is built from.
    pub cluster: ClusterConfig,
    /// Maximum queries executing concurrently on the shared pool.
    pub max_in_flight: usize,
    /// Maximum submissions *waiting* beyond the in-flight bound before the
    /// engine answers [`ServeError::Busy`] instead of queueing.
    pub queue_capacity: usize,
    /// Maximum prepared queries held by the plan cache (LRU beyond this).
    pub plan_cache_capacity: usize,
    /// Deadline applied to queries that do not carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cluster: ClusterConfig::new(4, 16),
            max_in_flight: 4,
            queue_capacity: 16,
            plan_cache_capacity: 64,
            default_deadline: None,
        }
    }
}

impl EngineConfig {
    /// A config with everything default but the cluster.
    pub fn with_cluster(cluster: ClusterConfig) -> EngineConfig {
        EngineConfig {
            cluster,
            ..EngineConfig::default()
        }
    }
}

/// One query submission.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The submitting client — the admission queue's fairness unit.
    pub client: String,
    /// The query and its nested-input declarations.
    pub spec: QuerySpec,
    /// The strategy to run it under.
    pub strategy: Strategy,
    /// Per-query deadline (overrides the engine default when set).
    pub deadline: Option<Duration>,
    /// Per-query worker-memory budget in bytes. A budgeted query runs with
    /// spilling forced on, so it degrades to out-of-core execution instead
    /// of failing — while unbudgeted neighbors on the same pool run
    /// uncapped.
    pub memory_budget: Option<usize>,
}

impl QueryRequest {
    /// A plain request: no deadline, no memory budget.
    pub fn new(client: impl Into<String>, spec: QuerySpec, strategy: Strategy) -> QueryRequest {
        QueryRequest {
            client: client.into(),
            spec,
            strategy,
            deadline: None,
            memory_budget: None,
        }
    }
}

/// What a served query returns.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The collected (nested) result rows. Shredded strategies are
    /// reassembled at the collect boundary so every strategy answers in
    /// the same shape.
    pub rows: Bag,
    /// The strategy that ran.
    pub strategy: Strategy,
    /// True when the plan cache served this query (no lowering, no
    /// optimizer pass, kernel programs reused).
    pub cache_hit: bool,
    /// Optimized plans compiled by this run (0 on a cache hit).
    pub plans_compiled: usize,
    /// Kernel-compile milliseconds booked by this run (≈ 0 on a hit).
    pub compile_ms: f64,
    /// Time spent waiting for admission.
    pub queue_wait: Duration,
    /// Execution wall clock (excludes queue wait).
    pub elapsed: Duration,
    /// The engine metrics of this query alone (per-session stats).
    pub stats: StatsSnapshot,
}

/// A typed serving failure.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The admission queue is full: the submission was rejected without
    /// buffering. Carries the load observed at rejection time so clients
    /// can back off proportionally.
    Busy {
        /// Queries executing when the submission was rejected.
        in_flight: usize,
        /// Submissions already waiting.
        queued: usize,
    },
    /// The query failed while executing (including cancellation/deadline
    /// and memory-cap errors).
    Exec(ExecError),
    /// A textual submission failed to parse or type check before reaching
    /// the pool. Carries the rendered diagnostic (spanned, for parse
    /// errors).
    Compile(String),
}

impl ServeError {
    /// True for the queue-full backpressure rejection.
    pub fn is_busy(&self) -> bool {
        matches!(self, ServeError::Busy { .. })
    }

    /// True when the query was cancelled (deadline or explicit).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ServeError::Exec(e) if e.is_cancelled())
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy { in_flight, queued } => write!(
                f,
                "engine busy: {in_flight} queries in flight, {queued} queued"
            ),
            ServeError::Exec(e) => write!(f, "{e}"),
            ServeError::Compile(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A point-in-time view of the engine's serving counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Plan-cache hits across all submissions.
    pub cache_hits: u64,
    /// Plan-cache misses (= queries prepared).
    pub cache_misses: u64,
    /// Entries evicted by the LRU bound.
    pub cache_evictions: u64,
    /// Prepared queries currently resident.
    pub cache_len: usize,
    /// Kernel-program cache hits.
    pub kernel_hits: u64,
    /// Kernel-program cache misses (= programs compiled).
    pub kernel_misses: u64,
    /// Submissions admitted (fast path or after queueing).
    pub admitted: u64,
    /// Submissions rejected with [`ServeError::Busy`].
    pub rejected: u64,
    /// Queries that finished successfully.
    pub completed: u64,
    /// Queries that failed while executing.
    pub failed: u64,
    /// The table catalog's current epoch.
    pub epoch: u64,
}

impl EngineStats {
    /// Plan-cache hit rate over all lookups (0 when none happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The registered tables: every logical table in nested form (standard
/// strategies) and shredded form (shredded strategies), both resident as
/// columnar collections, plus the catalog whose **epoch** keys the plan
/// cache.
struct TableRegistry {
    nested: HashMap<String, ColCollection>,
    shredded: HashMap<String, ColCollection>,
    /// Logical table → every physical name it registered (nested name,
    /// flat top bag, input dictionaries), so unregistering removes all.
    physical: HashMap<String, Vec<String>>,
    /// Logical table → its bag type (inferred at registration) — the type
    /// environment textual submissions are checked against.
    types: HashMap<String, Type>,
    /// Logical table → its nesting structure; non-empty structures become
    /// the shredded-input declarations of textual submissions.
    structures: HashMap<String, NestingStructure>,
    catalog: Catalog,
}

struct EngineInner {
    ctx: DistContext,
    config: EngineConfig,
    tables: RwLock<TableRegistry>,
    plans: Mutex<PlanCache>,
    kernels: Arc<KernelCache>,
    admission: AdmissionQueue,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

/// The embeddable query-as-a-service engine (cheaply cloneable handle).
///
/// One engine owns one resident `DistContext` — and with it the persistent
/// worker pool — plus the table registry, the compiled-plan cache, and the
/// admission queue. [`submit`](Engine::submit) is safe to call from many
/// threads at once: each admitted query runs in its own session context
/// (own stats, own cancellation scope, own optional memory budget) on the
/// shared pool.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Builds an engine: spins up the worker pool and empty registries.
    pub fn new(config: EngineConfig) -> Engine {
        let ctx = DistContext::new(config.cluster.clone());
        let admission = AdmissionQueue::new(config.max_in_flight, config.queue_capacity);
        let plans = Mutex::new(PlanCache::new(config.plan_cache_capacity));
        Engine {
            inner: Arc::new(EngineInner {
                ctx,
                config,
                tables: RwLock::new(TableRegistry {
                    nested: HashMap::new(),
                    shredded: HashMap::new(),
                    physical: HashMap::new(),
                    types: HashMap::new(),
                    structures: HashMap::new(),
                    catalog: Catalog::new(),
                }),
                plans,
                kernels: Arc::new(KernelCache::new()),
                admission,
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
            }),
        }
    }

    /// The engine's base context (the session factory / pool owner).
    pub fn context(&self) -> &DistContext {
        &self.inner.ctx
    }

    /// Registers (or replaces) a **flat** table. Ingests to columnar form
    /// once, resident for every later query; bumps the catalog epoch, so
    /// every cached plan compiled against the old catalog stops matching.
    pub fn register_flat(&self, name: &str, rows: Bag) -> trance_dist::Result<()> {
        let ty = table_type(&rows);
        let mut staged = HashMap::new();
        staged.insert(
            name.to_string(),
            self.inner.ctx.parallelize(rows.into_items()),
        );
        let cols = ingest_env(&staged)?;
        let col = cols.into_values().next().expect("one staged input");
        let mut t = self.inner.tables.write().unwrap();
        self.unregister_locked(&mut t, name);
        register_physical(&mut t, name, name.to_string(), &col)?;
        t.types.insert(name.to_string(), ty);
        t.structures
            .insert(name.to_string(), NestingStructure::flat());
        t.nested.insert(name.to_string(), col.clone());
        t.shredded.insert(name.to_string(), col);
        Ok(())
    }

    /// Registers (or replaces) a **nested** table: loads both its nested
    /// form and its shredded form (flat top bag plus one collection per
    /// dictionary path), all columnar-resident. Bumps the catalog epoch.
    pub fn register_nested(&self, name: &str, rows: Bag) -> trance_dist::Result<()> {
        let ty = table_type(&rows);
        let structure = nesting_structure(&ty).map_err(ExecError::from)?;
        let shredded = shred_value(&rows).map_err(ExecError::from)?;
        let mut staged = HashMap::new();
        staged.insert(
            name.to_string(),
            self.inner.ctx.parallelize(rows.into_items()),
        );
        staged.insert(
            flat_input_name(name),
            self.inner.ctx.parallelize(shredded.top.into_items()),
        );
        for (path, bag) in shredded.dicts {
            staged.insert(
                input_dict_name(name, &path),
                self.inner.ctx.parallelize(bag.into_items()),
            );
        }
        let mut cols = ingest_env(&staged)?;
        let mut t = self.inner.tables.write().unwrap();
        self.unregister_locked(&mut t, name);
        let nested_col = cols.remove(name).expect("nested form staged");
        register_physical(&mut t, name, name.to_string(), &nested_col)?;
        t.types.insert(name.to_string(), ty);
        t.structures.insert(name.to_string(), structure);
        t.nested.insert(name.to_string(), nested_col);
        for (phys_name, col) in cols {
            register_physical(&mut t, name, phys_name.clone(), &col)?;
            t.shredded.insert(phys_name, col);
        }
        Ok(())
    }

    /// Drops a table (both forms). Bumps the epoch when it existed.
    pub fn unregister(&self, name: &str) {
        let mut t = self.inner.tables.write().unwrap();
        self.unregister_locked(&mut t, name);
    }

    fn unregister_locked(&self, t: &mut TableRegistry, name: &str) {
        if let Some(physical) = t.physical.remove(name) {
            for phys in physical {
                t.nested.remove(&phys);
                t.shredded.remove(&phys);
                t.catalog.remove(&phys);
            }
            t.types.remove(name);
            t.structures.remove(name);
        }
    }

    /// The table catalog's current epoch (every registration bumps it).
    pub fn epoch(&self) -> u64 {
        self.inner.tables.read().unwrap().catalog.epoch()
    }

    /// Empties the compiled-plan cache *and* the kernel-program cache —
    /// the cold-start switch the cold-vs-warm benchmark flips between
    /// samples.
    pub fn clear_plan_cache(&self) {
        self.inner.plans.lock().unwrap().clear();
        self.inner.kernels.clear();
    }

    /// Serving counters so far.
    pub fn stats(&self) -> EngineStats {
        let plans = self.inner.plans.lock().unwrap();
        EngineStats {
            cache_hits: plans.hits(),
            cache_misses: plans.misses(),
            cache_evictions: plans.evictions(),
            cache_len: plans.len(),
            kernel_hits: self.inner.kernels.hits(),
            kernel_misses: self.inner.kernels.misses(),
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            epoch: self.inner.tables.read().unwrap().catalog.epoch(),
        }
    }

    /// Current admission load: `(in_flight, queued)`.
    pub fn load(&self) -> (usize, usize) {
        self.inner.admission.depth()
    }

    /// Submits one query and blocks until it finishes (or is rejected).
    ///
    /// The submission first passes admission control (fair round-robin
    /// across clients, bounded queue — a full queue answers
    /// [`ServeError::Busy`] immediately). Once admitted, the query runs in
    /// a fresh **session context** sharing the engine's worker pool: its
    /// own stats, its own cancellation scope (armed with the request's or
    /// the engine's deadline), and — when `memory_budget` is set — its own
    /// worker-memory cap with spilling forced on. The compiled-plan cache
    /// is consulted under the key *(query structure, input declarations,
    /// strategy, catalog epoch)*: a hit replays the captured optimized
    /// plans verbatim and reuses the cold run's kernel programs.
    pub fn submit(&self, req: &QueryRequest) -> Result<QueryResponse, ServeError> {
        let admitted = match self.inner.admission.acquire(&req.client) {
            Ok(a) => a,
            Err(r) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Busy {
                    in_flight: r.in_flight,
                    queued: r.queued,
                });
            }
        };
        self.inner.admitted.fetch_add(1, Ordering::Relaxed);
        let out = self.run_admitted(req, admitted.queue_wait);
        self.inner.admission.release();
        match &out {
            Ok(_) => self.inner.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.inner.failed.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Builds a [`QueryRequest`] from **surface-NRC text**, resolved
    /// against the registered tables: the text is parsed with
    /// `trance-frontend`, type checked against the registration-time table
    /// types, and multi-assignment programs are desugared into a `let`
    /// chain. Nested tables the query references become its shredded-input
    /// declarations automatically.
    ///
    /// Parse and type errors come back as [`ServeError::Compile`] with the
    /// rendered (spanned) diagnostic; nothing reaches the admission queue.
    ///
    /// Because the plan cache keys on the *structural fingerprint* of the
    /// parsed AST, resubmitting the same text (modulo whitespace and
    /// comments) is a cache hit: the second submission books zero plan and
    /// kernel compile time.
    pub fn text_request(
        &self,
        client: &str,
        text: &str,
        strategy: Strategy,
    ) -> Result<QueryRequest, ServeError> {
        let program =
            trance_frontend::parse_program(text).map_err(|e| ServeError::Compile(e.to_string()))?;
        let (env, structures) = {
            let t = self.inner.tables.read().unwrap();
            let mut env = TypeEnv::new();
            for (name, ty) in &t.types {
                env.bind(name.clone(), ty.clone());
            }
            (env, t.structures.clone())
        };
        program
            .typecheck(&env)
            .map_err(|e| ServeError::Compile(format!("type error: {e}")))?;
        let query = program
            .to_let_chain()
            .ok_or_else(|| ServeError::Compile("empty program".to_string()))?;
        let used = query.free_vars();
        let mut decls: Vec<ShreddedInputDecl> = structures
            .iter()
            .filter(|(name, s)| !s.children.is_empty() && used.contains(*name))
            .map(|(name, s)| ShreddedInputDecl::new(name, s.clone()))
            .collect();
        // Registry iteration order is arbitrary; the declaration list is
        // part of the cache fingerprint, so keep it deterministic.
        decls.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(QueryRequest::new(
            client,
            QuerySpec::new("text", query, decls),
            strategy,
        ))
    }

    /// Submits a **textual** query and blocks until it finishes: shorthand
    /// for [`text_request`](Engine::text_request) followed by
    /// [`submit`](Engine::submit).
    pub fn submit_text(
        &self,
        client: &str,
        text: &str,
        strategy: Strategy,
    ) -> Result<QueryResponse, ServeError> {
        let req = self.text_request(client, text, strategy)?;
        self.submit(&req)
    }

    fn run_admitted(
        &self,
        req: &QueryRequest,
        queue_wait: Duration,
    ) -> Result<QueryResponse, ServeError> {
        // Snapshot the registry under the read lock: clones are O(#tables)
        // Arc bumps, and the epoch read here is the one the cache key uses,
        // so a concurrent re-registration either fully precedes this query
        // (new tables, new epoch) or fully follows it.
        let (nested, shredded, epoch) = {
            let t = self.inner.tables.read().unwrap();
            (t.nested.clone(), t.shredded.clone(), t.catalog.epoch())
        };
        // A fresh session on the shared pool: per-query stats, cancellation
        // scope, and (when budgeted) worker-memory cap with spill forced on.
        let session = match req.memory_budget {
            Some(budget) => self.inner.ctx.session_with_memory(Some(budget)),
            None => self.inner.ctx.session(),
        };
        // Rebind the resident collections into the session (O(1) each: the
        // partitions are Arc-shared, only the context handle changes).
        let nested: HashMap<String, ColCollection> = nested
            .iter()
            .map(|(k, v)| (k.clone(), v.with_context(&session)))
            .collect();
        let shredded: HashMap<String, ColCollection> = shredded
            .iter()
            .map(|(k, v)| (k.clone(), v.with_context(&session)))
            .collect();

        let mut options = strategy_options(req.strategy, false);
        options.kernel_cache = Some(self.inner.kernels.clone());

        let deadline = req.deadline.or(self.inner.config.default_deadline);
        session.cancel_token().set_timeout(deadline);

        let key = plan_cache_key(&req.spec, req.strategy, epoch);
        let cached = self.inner.plans.lock().unwrap().get(key);
        let cache_hit = cached.is_some();
        let t0 = Instant::now();
        let result = match cached {
            Some(prepared) => {
                run_prepared(&prepared, &nested, &shredded, &session, &options).map(|r| (r, 0))
            }
            None => prepare_and_run(
                &req.spec,
                &nested,
                &shredded,
                &session,
                req.strategy,
                &options,
            )
            .map(|(result, prepared)| {
                let plans = prepared.plan_count();
                self.inner
                    .plans
                    .lock()
                    .unwrap()
                    .insert(key, Arc::new(prepared));
                (result, plans)
            }),
        };
        let elapsed = t0.elapsed();
        session.cancel_token().set_timeout(None);
        let (result, plans_compiled) = result.map_err(ServeError::Exec)?;
        let rows = collect_rows(result).map_err(ServeError::Exec)?;
        let stats = session.stats().snapshot();
        Ok(QueryResponse {
            rows,
            strategy: req.strategy,
            cache_hit,
            plans_compiled,
            compile_ms: stats.expr_compile_ms(),
            queue_wait,
            elapsed,
            stats,
        })
    }
}

/// The bag type of a registered table, inferred from its first row (all
/// rows of a registered table share one shape).
fn table_type(rows: &Bag) -> Type {
    Type::bag(
        rows.items()
            .first()
            .map(|v| v.infer_type())
            .unwrap_or(Type::Unknown),
    )
}

/// Registers one physical collection in the catalog (schema + size — the
/// epoch bump is the cache-invalidation signal) and records it under its
/// logical table for later unregistration.
fn register_physical(
    t: &mut TableRegistry,
    logical: &str,
    physical: String,
    col: &ColCollection,
) -> trance_dist::Result<()> {
    t.catalog.register(physical.clone(), exact_schema_col(col)?);
    t.catalog.set_size(physical.clone(), col.logical_bytes());
    t.physical
        .entry(logical.to_string())
        .or_default()
        .push(physical);
    Ok(())
}

/// Collects any strategy's output down to one nested row bag, so clients
/// see one response shape across all seven strategies.
fn collect_rows(result: RunResult) -> trance_dist::Result<Bag> {
    match result {
        RunResult::Nested(d) => Ok(d.collect_bag()),
        RunResult::Shredded(out) => collect_unshredded(&out).map_err(ExecError::from),
        RunResult::Failed(e) => Err(e),
    }
}
