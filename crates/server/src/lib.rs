//! # trance-server
//!
//! **Query-as-a-service** over the trance-rs engine: an embeddable
//! [`Engine`] that keeps one `DistContext` — and with it the persistent
//! morsel worker pool — open across requests and serves many clients'
//! queries concurrently. Three layers turn the one-shot benchmark pipeline
//! into a server:
//!
//! 1. **Compiled-plan cache.** Compiling a query repeats identical
//!    front-loaded work on every submission: lowering (the unnesting
//!    algorithm), per-assignment optimization, pipeline-breaker analysis,
//!    kernel-program compilation. The engine caches what that work
//!    produces ([`trance_compiler::PreparedQuery`] + the kernel programs)
//!    keyed by the *structural fingerprint* of the NRC program and input
//!    declarations, the strategy, and the table catalog's **epoch**. Any
//!    registration bumps the epoch, so stale plans can never serve; an LRU
//!    bound caps resident memory. A warm hit replays the captured
//!    optimized plans verbatim and books **zero** plan/kernel compile
//!    time.
//! 2. **Concurrent admission on the shared pool.** At most
//!    `max_in_flight` queries execute at once; waiters sit in per-client
//!    FIFO queues granted round-robin across clients, and a full queue is
//!    answered with the typed [`ServeError::Busy`] backpressure signal —
//!    never unbounded buffering. Each admitted query runs in its own
//!    session context (own stats, own cancellation scope with optional
//!    deadline) on the shared workers.
//! 3. **Per-query memory budgets.** A request carrying `memory_budget`
//!    runs under its own worker-memory cap with spilling forced on: the
//!    budgeted tenant degrades to out-of-core execution while neighbors
//!    on the same pool run uncapped.

#![warn(missing_docs)]

mod admission;
mod cache;
mod engine;

pub use engine::{Engine, EngineConfig, EngineStats, QueryRequest, QueryResponse, ServeError};
