//! **Per-query memory budgets** on the shared pool: a request carrying
//! `memory_budget` runs under its own worker-memory cap with spilling
//! forced on — it degrades to out-of-core execution and still answers
//! correctly — while an unbudgeted neighbor running *the same engine, the
//! same pool, at the same time* stays fully in memory.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trance_compiler::{QuerySpec, Strategy};
use trance_dist::ClusterConfig;
use trance_nrc::builder::{cmp_eq, forin, ifthen, proj, singleton, tuple, var};
use trance_server::{Engine, EngineConfig, QueryRequest};

#[path = "../../compiler/tests/common/mod.rs"]
mod common;
use common::{random_flat, Watchdog};

#[test]
fn budgeted_query_spills_while_neighbor_runs_uncapped() {
    let _wd = Watchdog::arm("server_budgets", Duration::from_secs(600));
    let mut rng = StdRng::seed_from_u64(0xB0D6);
    let r = random_flat(&mut rng, 20_000, 256).into_bag().unwrap();
    let s = random_flat(&mut rng, 20_000, 256).into_bag().unwrap();

    let mut config = EngineConfig::with_cluster(ClusterConfig::new(2, 4));
    config.max_in_flight = 2;
    let engine = Engine::new(config);
    engine.register_flat("R", r).unwrap();
    engine.register_flat("S", s).unwrap();

    let query = forin(
        "x",
        var("R"),
        forin(
            "y",
            var("S"),
            ifthen(
                cmp_eq(proj(var("x"), "a"), proj(var("y"), "a")),
                singleton(tuple([
                    ("u", proj(var("x"), "b")),
                    ("w", proj(var("y"), "c")),
                ])),
            ),
        ),
    );
    let spec = QuerySpec::new("budget", query, vec![]);

    let uncapped = QueryRequest::new("tenant-a", spec.clone(), Strategy::Standard);
    let mut capped = QueryRequest::new("tenant-b", spec, Strategy::Standard);
    capped.memory_budget = Some(256 * 1024);

    // Both tenants at once on the shared pool.
    let engine_ref = &engine;
    let (free_resp, capped_resp) = std::thread::scope(|scope| {
        let free = scope.spawn(move || engine_ref.submit(&uncapped).unwrap());
        let capped = scope.spawn(move || engine_ref.submit(&capped).unwrap());
        (free.join().unwrap(), capped.join().unwrap())
    });

    assert_eq!(
        free_resp.stats.spilled_bytes, 0,
        "the unbudgeted tenant must not spill"
    );
    assert!(
        capped_resp.stats.spilled_bytes > 0,
        "the budgeted tenant must degrade to out-of-core execution"
    );
    assert_eq!(
        common::canonical(&free_resp.rows),
        common::canonical(&capped_resp.rows),
        "budgeted and unbudgeted executions must agree on the result"
    );
}
