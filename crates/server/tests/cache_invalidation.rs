//! **Plan-cache invalidation differential** across all seven strategies.
//!
//! For each strategy: the first submission must miss and compile; the
//! second must hit, book **zero** plan/kernel compile time, and return a
//! bag equal to both the fresh compile and the sequential NRC reference
//! evaluator. Then the catalog is mutated — a table is re-registered with
//! different sizes and an extra field — and the next submission must miss
//! again (epoch bump) and produce the correct answer for the *new* data,
//! proving no stale plan can ever serve.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trance_compiler::{QuerySpec, Strategy};
use trance_dist::ClusterConfig;
use trance_nrc::{eval, Bag, Env, Value};
use trance_server::{Engine, EngineConfig, QueryRequest};
use trance_shred::{NestingStructure, ShreddedInputDecl};

#[path = "../../compiler/tests/common/mod.rs"]
mod common;
use common::{assert_bags_approx_eq, random_flat, random_nested, random_query, Watchdog};

fn n_structure() -> NestingStructure {
    NestingStructure::flat().with_child("items", NestingStructure::flat())
}

fn reference(query: &trance_nrc::Expr, r: &Value, s: &Value, n: &Value) -> Bag {
    let env = Env::from_bindings([("R", r.clone()), ("S", s.clone()), ("N", n.clone())]);
    eval(query, &env).unwrap().into_bag().unwrap()
}

fn as_bag(v: &Value) -> Bag {
    v.clone().into_bag().unwrap()
}

#[test]
fn epoch_bump_invalidates_across_all_strategies() {
    let _wd = Watchdog::arm("cache_invalidation", Duration::from_secs(600));
    let mut rng = StdRng::seed_from_u64(0xCACE);
    let r1 = random_flat(&mut rng, 60, 8);
    let s1 = random_flat(&mut rng, 50, 8);
    let n1 = random_nested(&mut rng, 40, 8);
    // The mutated generation: different row count (sizes) AND an extra
    // field on every `R` row (fields), so both catalog dimensions change.
    let r2 = Value::bag(
        random_flat(&mut rng, 110, 8)
            .into_bag()
            .unwrap()
            .into_items()
            .into_iter()
            .map(|v| {
                let mut t = v.as_tuple().unwrap().clone();
                t.set("extra", Value::Int(7));
                Value::Tuple(t)
            })
            .collect(),
    );

    let engine = Engine::new(EngineConfig::with_cluster(ClusterConfig::new(4, 8)));
    engine.register_flat("R", as_bag(&r1)).unwrap();
    engine.register_flat("S", as_bag(&s1)).unwrap();
    engine.register_nested("N", as_bag(&n1)).unwrap();

    let mut qrng = StdRng::seed_from_u64(7);
    let query = random_query(&mut qrng);
    let expected1 = reference(&query, &r1, &s1, &n1);

    for strategy in Strategy::all() {
        let spec = QuerySpec::new(
            format!("cache-{}", strategy.label()),
            query.clone(),
            vec![ShreddedInputDecl::new("N", n_structure())],
        );
        let req = QueryRequest::new("tester", spec, strategy);

        let cold = engine.submit(&req).unwrap();
        assert!(
            !cold.cache_hit,
            "{}: first submission must miss the plan cache",
            strategy.label()
        );
        assert!(
            cold.plans_compiled > 0,
            "{}: cold run must compile plans",
            strategy.label()
        );
        assert_bags_approx_eq(
            &expected1,
            &cold.rows,
            &format!("{} cold vs reference", strategy.label()),
        );

        let warm = engine.submit(&req).unwrap();
        assert!(
            warm.cache_hit,
            "{}: second submission must hit the plan cache",
            strategy.label()
        );
        assert_eq!(
            warm.plans_compiled,
            0,
            "{}: a hit compiles no plans",
            strategy.label()
        );
        assert_eq!(
            warm.compile_ms,
            0.0,
            "{}: a hit books zero kernel-compile time",
            strategy.label()
        );
        assert_eq!(
            warm.stats.expr_compiles(),
            0,
            "{}: a hit compiles zero kernel programs",
            strategy.label()
        );
        assert_bags_approx_eq(
            &cold.rows,
            &warm.rows,
            &format!("{} warm vs cold", strategy.label()),
        );
    }

    // Mutate the catalog: replacing `R` bumps the epoch, so every cached
    // plan above stops matching and the next submission recompiles against
    // the new table.
    let epoch_before = engine.epoch();
    engine.register_flat("R", as_bag(&r2)).unwrap();
    assert!(
        engine.epoch() > epoch_before,
        "re-registration must bump the catalog epoch"
    );
    let expected2 = reference(&query, &r2, &s1, &n1);

    for strategy in Strategy::all() {
        let spec = QuerySpec::new(
            format!("cache-{}", strategy.label()),
            query.clone(),
            vec![ShreddedInputDecl::new("N", n_structure())],
        );
        let req = QueryRequest::new("tester", spec, strategy);
        let recompiled = engine.submit(&req).unwrap();
        assert!(
            !recompiled.cache_hit,
            "{}: epoch bump must force a plan-cache miss",
            strategy.label()
        );
        assert!(
            recompiled.plans_compiled > 0,
            "{}: post-mutation run must recompile",
            strategy.label()
        );
        assert_bags_approx_eq(
            &expected2,
            &recompiled.rows,
            &format!("{} recompiled vs new-data reference", strategy.label()),
        );
    }

    let stats = engine.stats();
    assert_eq!(stats.cache_hits, 7, "one warm hit per strategy");
    assert_eq!(stats.cache_misses, 14, "cold + post-mutation per strategy");
}

#[test]
fn lru_bound_caps_residency_and_clear_resets() {
    let _wd = Watchdog::arm("cache_lru", Duration::from_secs(300));
    let mut rng = StdRng::seed_from_u64(0x17B);
    let r = random_flat(&mut rng, 30, 6);
    let s = random_flat(&mut rng, 30, 6);
    let n = random_nested(&mut rng, 20, 6);

    let mut config = EngineConfig::with_cluster(ClusterConfig::new(2, 4));
    config.plan_cache_capacity = 2;
    let engine = Engine::new(config);
    engine.register_flat("R", as_bag(&r)).unwrap();
    engine.register_flat("S", as_bag(&s)).unwrap();
    engine.register_nested("N", as_bag(&n)).unwrap();

    // Four structurally distinct queries through a 2-entry cache (the
    // filter constant differs, so each fingerprints differently):
    // residency stays ≤ 2.
    use trance_nrc::builder::{cmp_lt, forin, ifthen, int, proj, singleton, tuple, var};
    for i in 0..4 {
        let query = forin(
            "x",
            var("R"),
            ifthen(
                cmp_lt(proj(var("x"), "a"), int(i)),
                singleton(tuple([("u", proj(var("x"), "b"))])),
            ),
        );
        let spec = QuerySpec::new(
            format!("lru-{i}"),
            query,
            vec![ShreddedInputDecl::new("N", n_structure())],
        );
        engine
            .submit(&QueryRequest::new("tester", spec, Strategy::Standard))
            .unwrap();
    }
    let stats = engine.stats();
    assert!(
        stats.cache_len <= 2,
        "LRU bound must cap residency, got {}",
        stats.cache_len
    );
    assert!(stats.cache_evictions >= 2, "evictions must be counted");

    engine.clear_plan_cache();
    assert_eq!(engine.stats().cache_len, 0, "clear empties the plan cache");
}
