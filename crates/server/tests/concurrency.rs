//! **Concurrency differential**: N queries submitted concurrently from
//! client threads must produce bag-identical results — and, for the
//! deterministic (non-skew) strategies, identical logical shuffle bytes —
//! to the same queries submitted serially. Runs at workers {1, 2, 7}.
//!
//! The serial pass doubles as the oracle pass: every result is also checked
//! against the sequential NRC reference evaluator. The serial pass warms
//! the plan cache, so the concurrent pass additionally proves that cached
//! plans replayed concurrently from many session contexts agree with their
//! cold compilations byte-for-byte on the shuffle meter.
//!
//! Also here: the queue-full case — an engine with a zero-capacity wait
//! queue must answer the typed [`ServeError::Busy`] immediately, never
//! hang — and per-query deadline cancellation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trance_compiler::{QuerySpec, Strategy};
use trance_dist::ClusterConfig;
use trance_nrc::{eval, Bag, Env, Value};
use trance_server::{Engine, EngineConfig, QueryRequest, ServeError};
use trance_shred::{NestingStructure, ShreddedInputDecl};

#[path = "../../compiler/tests/common/mod.rs"]
mod common;
use common::{assert_bags_approx_eq, random_flat, random_nested, random_query, Watchdog};

const PROGRAMS: u64 = 24;

fn n_structure() -> NestingStructure {
    NestingStructure::flat().with_child("items", NestingStructure::flat())
}

/// A deterministic flat `R ⋈ S` query (touches only the flat inputs, for
/// the tests that register no nested table). `salt` keeps two uses
/// structurally distinct so they never share a plan-cache entry.
fn flat_join_query(salt: i64) -> trance_nrc::Expr {
    use trance_nrc::builder::{cmp_eq, cmp_lt, forin, ifthen, int, proj, singleton, tuple, var};
    forin(
        "x",
        var("R"),
        forin(
            "y",
            var("S"),
            ifthen(
                cmp_eq(proj(var("x"), "a"), proj(var("y"), "a")),
                ifthen(
                    cmp_lt(int(salt), int(salt + 1)),
                    singleton(tuple([
                        ("u", proj(var("x"), "b")),
                        ("w", proj(var("y"), "c")),
                    ])),
                ),
            ),
        ),
    )
}

struct Case {
    req: QueryRequest,
    expected: Bag,
}

/// The 24-program corpus (same generator as the compiler's differential
/// suites), each paired with its sequential-evaluator oracle and assigned
/// to one of seven strategies and one of four clients round-robin.
fn build_cases(r: &Value, s: &Value, n: &Value) -> Vec<Case> {
    let env = Env::from_bindings([("R", r.clone()), ("S", s.clone()), ("N", n.clone())]);
    (0..PROGRAMS)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(0x5EED + seed);
            let query = random_query(&mut rng);
            let expected = eval(&query, &env).unwrap().into_bag().unwrap();
            let strategy = Strategy::all()[(seed % 7) as usize];
            let spec = QuerySpec::new(
                format!("conc-{seed}"),
                query,
                vec![ShreddedInputDecl::new("N", n_structure())],
            );
            Case {
                req: QueryRequest::new(format!("client-{}", seed % 4), spec, strategy),
                expected,
            }
        })
        .collect()
}

#[test]
fn concurrent_submissions_match_serial() {
    let _wd = Watchdog::arm("server_concurrency", Duration::from_secs(900));
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let r = random_flat(&mut rng, 60, 8);
    let s = random_flat(&mut rng, 50, 8);
    let n = random_nested(&mut rng, 40, 8);

    for workers in [1usize, 2, 7] {
        let mut config = EngineConfig::with_cluster(ClusterConfig::new(workers, workers * 2));
        config.max_in_flight = 4;
        config.queue_capacity = 64;
        let engine = Engine::new(config);
        engine
            .register_flat("R", r.clone().into_bag().unwrap())
            .unwrap();
        engine
            .register_flat("S", s.clone().into_bag().unwrap())
            .unwrap();
        engine
            .register_nested("N", n.clone().into_bag().unwrap())
            .unwrap();

        let cases = build_cases(&r, &s, &n);

        // Serial pass: one at a time, checked against the oracle. This
        // also warms the plan cache for the concurrent pass.
        let mut serial: BTreeMap<usize, (Vec<Value>, u64)> = BTreeMap::new();
        for (i, case) in cases.iter().enumerate() {
            let resp = engine.submit(&case.req).unwrap_or_else(|e| {
                panic!("workers={workers} query {i} serial submit failed: {e}")
            });
            assert_bags_approx_eq(
                &case.expected,
                &resp.rows,
                &format!("workers={workers} query {i} serial vs reference"),
            );
            serial.insert(
                i,
                (common::canonical(&resp.rows), resp.stats.shuffled_bytes),
            );
        }

        // Concurrent pass: every query from its own thread, all in flight
        // against the admission queue at once.
        let engine_ref = &engine;
        let concurrent: BTreeMap<usize, (Vec<Value>, u64, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = cases
                .iter()
                .enumerate()
                .map(|(i, case)| {
                    scope.spawn(move || {
                        let resp = engine_ref.submit(&case.req).unwrap_or_else(|e| {
                            panic!("workers={workers} query {i} concurrent submit failed: {e}")
                        });
                        (
                            i,
                            (
                                common::canonical(&resp.rows),
                                resp.stats.shuffled_bytes,
                                resp.cache_hit,
                            ),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (i, case) in cases.iter().enumerate() {
            let (serial_rows, serial_bytes) = &serial[&i];
            let (conc_rows, conc_bytes, cache_hit) = &concurrent[&i];
            assert_eq!(
                serial_rows, conc_rows,
                "workers={workers} query {i}: concurrent result differs from serial"
            );
            assert!(
                cache_hit,
                "workers={workers} query {i}: concurrent pass must hit the warm plan cache"
            );
            // Skew-aware joins depend on sampled heavy-hitter statistics;
            // the deterministic strategies must meter byte-identical
            // logical shuffle volume under concurrency.
            if !case.req.strategy.skew_aware() {
                assert_eq!(
                    serial_bytes,
                    conc_bytes,
                    "workers={workers} query {i} ({}): logical shuffle bytes drifted \
                     between serial and concurrent execution",
                    case.req.strategy.label()
                );
            }
        }
    }
}

#[test]
fn queue_full_answers_typed_busy_not_a_hang() {
    let _wd = Watchdog::arm("server_busy", Duration::from_secs(300));
    let mut rng = StdRng::seed_from_u64(0xB5);
    // Enough rows that a join keeps the single slot occupied for a while.
    let r = random_flat(&mut rng, 4000, 64);
    let s = random_flat(&mut rng, 4000, 64);

    let mut config = EngineConfig::with_cluster(ClusterConfig::new(2, 4));
    config.max_in_flight = 1;
    config.queue_capacity = 0;
    let engine = Engine::new(config);
    engine.register_flat("R", r.into_bag().unwrap()).unwrap();
    engine.register_flat("S", s.into_bag().unwrap()).unwrap();

    // A flat R⋈S query (no N — only R and S are registered here).
    let query = flat_join_query(3);
    let spec = QuerySpec::new("busy", query, vec![]);
    let stop = Arc::new(AtomicBool::new(false));

    let engine_ref = &engine;
    let spec_ref = &spec;
    std::thread::scope(|scope| {
        // A background client keeps the single execution slot occupied
        // (retrying through its own Busy rejections).
        let flag = stop.clone();
        scope.spawn(move || {
            let req = QueryRequest::new("hog", spec_ref.clone(), Strategy::Standard);
            while !flag.load(Ordering::Relaxed) {
                match engine_ref.submit(&req) {
                    Ok(_) => {}
                    Err(ServeError::Busy { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected serve error: {e}"),
                }
            }
        });

        // The foreground client must eventually observe the typed Busy —
        // bounded by the watchdog, never a hang.
        let req = QueryRequest::new("probe", spec_ref.clone(), Strategy::Standard);
        loop {
            match engine_ref.submit(&req) {
                Err(ServeError::Busy { in_flight, queued }) => {
                    assert_eq!(in_flight, 1, "one query holds the only slot");
                    assert_eq!(queued, 0, "a zero-capacity queue never buffers");
                    break;
                }
                Ok(_) => continue,
                Err(e) => panic!("unexpected serve error: {e}"),
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        engine.stats().rejected > 0,
        "rejections must be counted in the engine stats"
    );
}

#[test]
fn deadline_cancels_with_typed_error() {
    let _wd = Watchdog::arm("server_deadline", Duration::from_secs(300));
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let r = random_flat(&mut rng, 5000, 64);
    let s = random_flat(&mut rng, 5000, 64);

    let engine = Engine::new(EngineConfig::with_cluster(ClusterConfig::new(2, 4)));
    engine.register_flat("R", r.into_bag().unwrap()).unwrap();
    engine.register_flat("S", s.into_bag().unwrap()).unwrap();

    let query = flat_join_query(11);
    let mut req = QueryRequest::new(
        "impatient",
        QuerySpec::new("deadline", query, vec![]),
        Strategy::Standard,
    );
    req.deadline = Some(Duration::from_nanos(1));
    let err = engine
        .submit(&req)
        .expect_err("a 1ns deadline must cancel the run");
    assert!(
        err.is_cancelled(),
        "deadline expiry surfaces as a typed cancellation, got: {err}"
    );

    // The engine keeps serving after a cancellation: the same query with
    // no deadline completes.
    req.deadline = None;
    engine.submit(&req).unwrap();
    assert_eq!(engine.stats().failed, 1);
    assert_eq!(engine.stats().completed, 1);
}
