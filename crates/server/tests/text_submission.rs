//! **Textual submission** end to end: surface-NRC text goes through the
//! front-end into the engine, nested tables become shredded-input
//! declarations automatically, and — because the plan cache keys on the
//! structural fingerprint of the *parsed AST* — resubmitting the same text
//! (even reformatted) is a plan-cache hit booking zero compile time.

use std::time::Duration;

use trance_compiler::Strategy;
use trance_dist::ClusterConfig;
use trance_nrc::{Bag, Value};
use trance_server::{Engine, EngineConfig, ServeError};

#[path = "../../compiler/tests/common/mod.rs"]
mod common;
use common::Watchdog;

fn dept(name: &str, emps: Vec<(&str, i64, i64)>) -> Value {
    Value::tuple([
        ("dept", Value::str(name)),
        (
            "emps",
            Value::bag(
                emps.into_iter()
                    .map(|(n, s, g)| {
                        Value::tuple([
                            ("name", Value::str(n)),
                            ("sal", Value::Int(s)),
                            ("grade", Value::Int(g)),
                        ])
                    })
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
}

fn engine_with_tables() -> Engine {
    let engine = Engine::new(EngineConfig::with_cluster(ClusterConfig::new(2, 4)));
    engine
        .register_nested(
            "N",
            Bag::new(vec![
                dept("eng", vec![("ada", 90, 1), ("bob", 40, 2)]),
                dept("ops", vec![("cyd", 70, 1)]),
            ]),
        )
        .unwrap();
    engine
        .register_flat(
            "R",
            Bag::new(vec![
                Value::tuple([("grade", Value::Int(1)), ("bonus", Value::Int(20))]),
                Value::tuple([("grade", Value::Int(2)), ("bonus", Value::Int(10))]),
            ]),
        )
        .unwrap();
    engine
}

const QUERY: &str = "
// Employees whose salary plus their grade's bonus clears 100.
Result <=
  for d in N union
  { <
      dept := d.dept,
      rich :=
        for e in d.emps union
        for r in R union
        if (r.grade == e.grade && e.sal + r.bonus > 100) then
        { <name := e.name, pay := e.sal + r.bonus> }
    > }
";

/// The same query with every comment stripped and all whitespace
/// reshuffled — structurally identical, textually different.
const QUERY_REFORMATTED: &str = "Result <= for d in N union { < dept := d.dept, \
    rich := for e in d.emps union for r in R union \
    if (r.grade == e.grade && e.sal + r.bonus > 100) then \
    { < name := e.name, pay := e.sal + r.bonus > } > }";

fn expected() -> Bag {
    Bag::new(vec![
        Value::tuple([
            ("dept", Value::str("eng")),
            (
                "rich",
                Value::bag(vec![Value::tuple([
                    ("name", Value::str("ada")),
                    ("pay", Value::Int(110)),
                ])]),
            ),
        ]),
        Value::tuple([
            ("dept", Value::str("ops")),
            ("rich", Value::bag(Vec::new())),
        ]),
    ])
}

#[test]
fn repeated_text_submission_is_a_plan_cache_hit_on_every_strategy() {
    let _wd = Watchdog::arm("text_submission", Duration::from_secs(600));
    let engine = engine_with_tables();
    let want = expected();

    for strategy in Strategy::all() {
        let cold = engine.submit_text("tenant", QUERY, strategy).unwrap();
        assert!(
            !cold.cache_hit,
            "{}: first textual submission must miss",
            strategy.label()
        );
        assert!(
            cold.plans_compiled > 0,
            "{}: cold text run must compile plans",
            strategy.label()
        );
        assert!(
            cold.rows.multiset_eq(&want),
            "{}: wrong rows from text: {:?}",
            strategy.label(),
            cold.rows
        );

        let warm = engine.submit_text("tenant", QUERY, strategy).unwrap();
        assert!(
            warm.cache_hit,
            "{}: resubmitting the same text must hit the plan cache",
            strategy.label()
        );
        assert_eq!(
            warm.plans_compiled,
            0,
            "{}: a textual hit compiles no plans",
            strategy.label()
        );
        assert_eq!(
            warm.compile_ms,
            0.0,
            "{}: a textual hit books zero kernel-compile time",
            strategy.label()
        );
        assert!(warm.rows.multiset_eq(&want), "{}", strategy.label());

        // Reformatting the text (comments gone, whitespace reshuffled)
        // parses to the same AST, so it must hit too.
        let reformatted = engine
            .submit_text("tenant", QUERY_REFORMATTED, strategy)
            .unwrap();
        assert!(
            reformatted.cache_hit,
            "{}: reformatted text must fingerprint identically",
            strategy.label()
        );
        assert!(reformatted.rows.multiset_eq(&want), "{}", strategy.label());
    }

    let stats = engine.stats();
    assert_eq!(stats.cache_misses, 7, "one cold compile per strategy");
    assert_eq!(stats.cache_hits, 14, "warm + reformatted per strategy");
}

#[test]
fn compile_errors_are_typed_and_never_reach_the_pool() {
    let engine = engine_with_tables();

    let err = engine
        .submit_text("tenant", "for d in union", Strategy::Standard)
        .unwrap_err();
    match &err {
        ServeError::Compile(msg) => {
            assert!(
                msg.contains("1:10"),
                "parse diagnostic must carry the span, got: {msg}"
            );
        }
        other => panic!("expected a Compile error, got {other}"),
    }

    let err = engine
        .submit_text(
            "tenant",
            "for d in N union { d.no_such_field }",
            Strategy::Standard,
        )
        .unwrap_err();
    assert!(
        matches!(&err, ServeError::Compile(msg) if msg.contains("no_such_field")),
        "type diagnostic must name the field, got: {err}"
    );

    let stats = engine.stats();
    assert_eq!(stats.admitted, 0, "rejected text must not be admitted");
    assert_eq!(stats.failed, 0);
}
