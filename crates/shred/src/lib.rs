//! # trance-shred
//!
//! The shredded representation and query shredding transformation of
//! **trance-rs** (Section 4 of the paper).
//!
//! * [`repr`] — value shredding and unshredding: a nested bag becomes a flat
//!   top-level bag plus one flat dictionary (with a `label` column) per
//!   nesting level, and back.
//! * [`query`] — query shredding: an NRC query over nested inputs becomes a
//!   *flat* NRC program computing the output's top-level bag and one
//!   materialized dictionary per output nesting level, applying the paper's
//!   domain-elimination rules so dictionaries are computed directly from
//!   input dictionaries or flat sources.
//! * [`unshred`] — generation of the unshredding step that reassembles nested
//!   output from the materialized dictionaries.

#![warn(missing_docs)]

pub mod query;
pub mod repr;
pub mod unshred;

pub use query::{
    flat_input_name, input_dict_name, output_dict_name, shred_query, ShreddedInputDecl,
    ShreddedQuery, TOP_BAG,
};
pub use repr::{
    nesting_structure, shred_value, unshred_value, NestingStructure, ShreddedValue, SiteAllocator,
};
pub use unshred::{bind_shredded_input, eval_and_unshred, unshred_pieces, unshred_program_output};
