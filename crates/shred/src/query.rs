//! Query shredding (Section 4, Figures 4 and 5).
//!
//! The transformation takes an NRC query over nested inputs and produces a
//! *shredded program*: a sequence of **flat** NRC assignments that compute
//! (a) one materialized dictionary per output nesting level and (b) the flat
//! top-level bag, all over the shredded (flat) representations of the inputs.
//!
//! Compared to the paper's presentation the implementation folds the symbolic
//! phase and the materialization phase into one pass and emits dictionaries in
//! their *relational* representation (a flat bag with a `label` column — the
//! representation the paper's own implementation uses for code generation).
//! The two domain-elimination rules of Section 4 appear here as *capture
//! analysis* on each dictionary definition:
//!
//! * **label passthrough** (rule 1): when an inner bag expression only
//!   navigates a nested attribute of the input, the output dictionary is
//!   computed directly from the corresponding input dictionary and the output
//!   labels are the input labels;
//! * **source grouping** (rule 2): when an inner bag expression filters a flat
//!   source by equality with an outer attribute, the output dictionary is
//!   computed directly from that source and labels are built from the join
//!   attribute;
//!
//! so no label-domain enumeration is ever materialized.

use std::collections::BTreeMap;

use trance_nrc::builder as b;
use trance_nrc::{CmpOp, Expr, NrcError, Program, Result};

use crate::repr::{NestingStructure, SiteAllocator};

/// Naming convention for the flat part of a shredded input.
pub fn flat_input_name(input: &str) -> String {
    format!("{input}__F")
}

/// Naming convention for the dictionary of `path` of a shredded input.
pub fn input_dict_name(input: &str, path: &str) -> String {
    format!("{input}__D_{path}")
}

/// Naming convention for an output dictionary assignment.
pub fn output_dict_name(path: &str) -> String {
    format!("MatDict_{path}")
}

/// Name of the assignment computing the flat top-level output bag.
pub const TOP_BAG: &str = "TopBag";

/// Description of one shredded (nested) input relation.
#[derive(Debug, Clone)]
pub struct ShreddedInputDecl {
    /// Original input name (e.g. `COP`).
    pub name: String,
    /// Nesting structure of the input's type.
    pub structure: NestingStructure,
}

impl ShreddedInputDecl {
    /// Declares an input with the given nesting structure. Flat inputs use
    /// [`NestingStructure::flat`].
    pub fn new(name: impl Into<String>, structure: NestingStructure) -> Self {
        ShreddedInputDecl {
            name: name.into(),
            structure,
        }
    }
}

/// A handle to a materialized dictionary variable and the handles of its
/// children.
#[derive(Debug, Clone, Default)]
struct DictHandle {
    var: String,
    children: BTreeMap<String, DictHandle>,
}

impl DictHandle {
    fn from_structure(
        input: &str,
        prefix: &str,
        s: &NestingStructure,
    ) -> BTreeMap<String, DictHandle> {
        let mut out = BTreeMap::new();
        for (attr, child) in &s.children {
            let path = if prefix.is_empty() {
                attr.clone()
            } else {
                format!("{prefix}_{attr}")
            };
            out.insert(
                attr.clone(),
                DictHandle {
                    var: input_dict_name(input, &path),
                    children: DictHandle::from_structure(input, &path, child),
                },
            );
        }
        out
    }
}

/// What a variable in scope denotes during shredding.
#[derive(Debug, Clone)]
enum VarInfo {
    /// A row of a flat (shredded) bag; bag attributes appear as labels whose
    /// dictionaries are given by the handles.
    Row(BTreeMap<String, DictHandle>),
    /// A whole flat bag (a `let`-bound bag or an input).
    Bag(BTreeMap<String, DictHandle>),
}

type Env = BTreeMap<String, VarInfo>;

/// The result of shredding a query.
#[derive(Debug, Clone)]
pub struct ShreddedQuery {
    /// The flat program: one assignment per output dictionary followed by the
    /// [`TOP_BAG`] assignment.
    pub program: Program,
    /// The nesting structure of the (nested) output, mapping output bag
    /// attributes to dictionary paths.
    pub structure: NestingStructure,
    /// Maps each output dictionary path to the name of its assignment.
    pub dict_names: BTreeMap<String, String>,
}

impl ShreddedQuery {
    /// Names of the shredded input variables the program expects to be bound:
    /// `X__F` and `X__D_<path>` for every declared nested input, plus any flat
    /// inputs referenced directly.
    pub fn input_names(&self) -> Vec<String> {
        self.program.input_names()
    }
}

struct ShredState {
    inputs: BTreeMap<String, ShreddedInputDecl>,
    sites: SiteAllocator,
    defs: Vec<(String, Expr)>,
    dict_names: BTreeMap<String, String>,
    structure_root: NestingStructure,
}

/// Shreds a query over the declared nested inputs into a flat program.
pub fn shred_query(query: &Expr, inputs: &[ShreddedInputDecl]) -> Result<ShreddedQuery> {
    let mut st = ShredState {
        inputs: inputs.iter().map(|d| (d.name.clone(), d.clone())).collect(),
        sites: SiteAllocator::new(),
        defs: Vec::new(),
        dict_names: BTreeMap::new(),
        structure_root: NestingStructure::flat(),
    };
    let env = Env::new();
    let (top, row_ctx) = shred_bag(query, &env, &mut st, "")?;
    // Record the output structure from the top-level row context.
    st.structure_root = structure_from_handles(&row_ctx);

    let mut program = Program::new();
    for (path, expr) in &st.defs {
        program.assign(output_dict_name(path), expr.clone());
    }
    program.assign(TOP_BAG, top);
    Ok(ShreddedQuery {
        program,
        structure: st.structure_root,
        dict_names: st.dict_names,
    })
}

fn structure_from_handles(handles: &BTreeMap<String, DictHandle>) -> NestingStructure {
    let mut s = NestingStructure::flat();
    for (attr, h) in handles {
        s.children
            .insert(attr.clone(), structure_from_handles(&h.children));
    }
    s
}

/// Shreds a bag-typed expression, returning the flat expression together with
/// the dictionary handles for the bag attributes of its rows.
fn shred_bag(
    e: &Expr,
    env: &Env,
    st: &mut ShredState,
    out_path: &str,
) -> Result<(Expr, BTreeMap<String, DictHandle>)> {
    match e {
        Expr::Var(name) => {
            if let Some(decl) = st.inputs.get(name) {
                let handles = DictHandle::from_structure(&decl.name, "", &decl.structure);
                return Ok((b::var(flat_input_name(name)), handles));
            }
            match env.get(name) {
                Some(VarInfo::Bag(handles)) => Ok((b::var(name.clone()), handles.clone())),
                _ => Ok((b::var(name.clone()), BTreeMap::new())),
            }
        }
        Expr::EmptyBag(t) => Ok((Expr::EmptyBag(t.clone()), BTreeMap::new())),
        Expr::For { var, source, body } => {
            let (src, row_ctx, guard) = shred_for_source(source, env, st)?;
            let mut inner_env = env.clone();
            inner_env.insert(var.clone(), VarInfo::Row(row_ctx));
            let (body_f, body_row) = shred_bag(body, &inner_env, st, out_path)?;
            let body_f = match guard {
                Some(g) => {
                    let g = g.substitute("__ROWVAR__", &b::var(var.clone()));
                    b::ifthen(g, body_f)
                }
                None => body_f,
            };
            Ok((b::forin(var.clone(), src, body_f), body_row))
        }
        Expr::Union(a, bq) => {
            let (fa, ra) = shred_bag(a, env, st, out_path)?;
            let (fb, rb) = shred_bag(bq, env, st, out_path)?;
            let mut merged = ra.clone();
            for (k, v) in rb {
                merged.entry(k).or_insert(v);
            }
            Ok((b::union(fa, fb), merged))
        }
        Expr::Let { var, value, body } => {
            let (vf, vrow) = shred_bag(value, env, st, out_path)?;
            let mut inner = env.clone();
            inner.insert(var.clone(), VarInfo::Bag(vrow));
            let (bf, brow) = shred_bag(body, &inner, st, out_path)?;
            Ok((b::letin(var.clone(), vf, bf), brow))
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let (tf, trow) = shred_bag(then_branch, env, st, out_path)?;
            match else_branch {
                None => Ok((b::ifthen(shred_scalar(cond), tf), trow)),
                Some(eb) => {
                    let (ef, _) = shred_bag(eb, env, st, out_path)?;
                    Ok((b::ifelse(shred_scalar(cond), tf, ef), trow))
                }
            }
        }
        Expr::Singleton(inner) => match inner.as_ref() {
            Expr::Tuple(fields) => {
                let mut flat_fields: Vec<(String, Expr)> = Vec::with_capacity(fields.len());
                let mut handles = BTreeMap::new();
                for (name, fe) in fields {
                    if is_bag_expr(fe, env, st) {
                        let path = if out_path.is_empty() {
                            name.clone()
                        } else {
                            format!("{out_path}_{name}")
                        };
                        let (label_expr, handle) = shred_inner_bag(fe, env, st, &path)?;
                        flat_fields.push((name.clone(), label_expr));
                        handles.insert(name.clone(), handle);
                    } else {
                        flat_fields.push((name.clone(), shred_scalar(fe)));
                    }
                }
                Ok((b::singleton(Expr::Tuple(flat_fields)), handles))
            }
            other => Ok((b::singleton(shred_scalar(other)), BTreeMap::new())),
        },
        Expr::SumBy { input, key, values } => {
            let (inf, _) = shred_bag(input, env, st, out_path)?;
            Ok((
                Expr::SumBy {
                    input: Box::new(inf),
                    key: key.clone(),
                    values: values.clone(),
                },
                BTreeMap::new(),
            ))
        }
        Expr::GroupBy {
            input,
            key,
            group_attr,
        } => {
            // The grouped attribute stays as an inline (flat) bag inside the
            // dictionary row; it is not shredded further.
            let (inf, _) = shred_bag(input, env, st, out_path)?;
            Ok((
                Expr::GroupBy {
                    input: Box::new(inf),
                    key: key.clone(),
                    group_attr: group_attr.clone(),
                },
                BTreeMap::new(),
            ))
        }
        Expr::Dedup(inner) => {
            let (inf, row) = shred_bag(inner, env, st, out_path)?;
            Ok((b::dedup(inf), row))
        }
        Expr::Proj { tuple, field } => {
            // A bag-valued projection used directly as a bag: turn it into an
            // explicit iteration so the label-equality join appears.
            if let Expr::Var(x) = tuple.as_ref() {
                if let Some(VarInfo::Row(handles)) = env.get(x) {
                    if let Some(h) = handles.get(field) {
                        let fresh = format!("__{x}_{field}_row");
                        let guard = b::cmp_eq(
                            b::proj(b::var(fresh.clone()), "label"),
                            b::proj(b::var(x.clone()), field.clone()),
                        );
                        return Ok((
                            b::forin(
                                fresh.clone(),
                                b::var(h.var.clone()),
                                b::ifthen(guard, b::singleton(b::var(fresh))),
                            ),
                            h.children.clone(),
                        ));
                    }
                }
            }
            Ok((e.clone(), BTreeMap::new()))
        }
        other => Err(NrcError::Other(format!(
            "query shredding does not support this bag expression shape: {other:?}"
        ))),
    }
}

/// Shreds the source of a `for` loop. Returns the flat source expression, the
/// row context of the bound variable, and an optional guard predicate (using
/// the placeholder variable `__ROWVAR__` for the bound row) that must be
/// applied to each row — used when navigating an inner bag turns into a
/// label-equality join against a dictionary.
fn shred_for_source(
    source: &Expr,
    env: &Env,
    st: &mut ShredState,
) -> Result<(Expr, BTreeMap<String, DictHandle>, Option<Expr>)> {
    match source {
        Expr::Proj { tuple, field } => {
            if let Expr::Var(x) = tuple.as_ref() {
                if let Some(VarInfo::Row(handles)) = env.get(x) {
                    if let Some(h) = handles.get(field) {
                        let guard = b::cmp_eq(
                            b::proj(b::var("__ROWVAR__"), "label"),
                            b::proj(b::var(x.clone()), field.clone()),
                        );
                        return Ok((b::var(h.var.clone()), h.children.clone(), Some(guard)));
                    }
                }
            }
            Err(NrcError::Other(format!(
                "cannot shred iteration over projection {source:?}"
            )))
        }
        other => {
            let (f, row) = shred_bag(other, env, &mut *st, "")?;
            Ok((f, row, None))
        }
    }
}

/// Scalars pass through unchanged: shredded rows keep the same scalar
/// attributes, and bag attributes referenced inside scalar expressions do not
/// occur in well-typed NRC.
fn shred_scalar(e: &Expr) -> Expr {
    e.clone()
}

/// True when `e` denotes a bag in the current context.
fn is_bag_expr(e: &Expr, env: &Env, st: &ShredState) -> bool {
    match e {
        Expr::For { .. }
        | Expr::Union(..)
        | Expr::EmptyBag(_)
        | Expr::Singleton(_)
        | Expr::SumBy { .. }
        | Expr::GroupBy { .. }
        | Expr::Dedup(_)
        | Expr::MatLookup { .. }
        | Expr::BagToDict(_) => true,
        Expr::If {
            then_branch,
            else_branch,
            ..
        } => {
            is_bag_expr(then_branch, env, st)
                || else_branch
                    .as_ref()
                    .map(|e| is_bag_expr(e, env, st))
                    .unwrap_or(true)
        }
        Expr::Let { body, .. } => is_bag_expr(body, env, st),
        Expr::Var(v) => st.inputs.contains_key(v) || matches!(env.get(v), Some(VarInfo::Bag(_))),
        Expr::Proj { tuple, field } => {
            if let Expr::Var(x) = tuple.as_ref() {
                if let Some(VarInfo::Row(handles)) = env.get(x) {
                    return handles.contains_key(field);
                }
            }
            false
        }
        _ => false,
    }
}

/// Shreds an inner bag expression occurring as a bag-valued attribute of a
/// tuple constructor. Emits the dictionary definition(s) for `path` and
/// returns the label expression to store in the flat tuple, plus the handle
/// describing the produced dictionary.
fn shred_inner_bag(
    fe: &Expr,
    env: &Env,
    st: &mut ShredState,
    path: &str,
) -> Result<(Expr, DictHandle)> {
    // Peel aggregate/dedup wrappers; they are re-applied around the dictionary
    // definition with `label` added to the grouping key.
    let (wrapper, core) = match fe {
        Expr::SumBy { input, key, values } => (
            Wrapper::SumBy {
                key: key.clone(),
                values: values.clone(),
            },
            input.as_ref(),
        ),
        Expr::GroupBy {
            input,
            key,
            group_attr,
        } => (
            Wrapper::GroupBy {
                key: key.clone(),
                group_attr: group_attr.clone(),
            },
            input.as_ref(),
        ),
        Expr::Dedup(input) => (Wrapper::Dedup, input.as_ref()),
        other => (Wrapper::None, other),
    };

    // Case C: a nested attribute passed through unchanged.
    if let Expr::Proj { tuple, field } = core {
        if let Expr::Var(x) = tuple.as_ref() {
            if let Some(VarInfo::Row(handles)) = env.get(x) {
                if let Some(h) = handles.get(field) {
                    if matches!(wrapper, Wrapper::None) {
                        let handle = alias_dictionary(h, st, path)?;
                        return Ok((b::proj(b::var(x.clone()), field.clone()), handle));
                    }
                }
            }
        }
    }

    // The remaining cases need a `for` loop at the core.
    let (var, source, body) = match core {
        Expr::For { var, source, body } => (var.clone(), source.as_ref(), body.as_ref()),
        other => {
            return Err(NrcError::Other(format!(
                "unsupported inner bag expression for shredding at path `{path}`: {other:?}"
            )))
        }
    };

    // Case A — label passthrough (domain-elimination rule 1): the loop
    // navigates a nested attribute `x.a` of the enclosing level.
    if let Expr::Proj { tuple, field } = source {
        if let Expr::Var(x) = tuple.as_ref() {
            if let Some(VarInfo::Row(handles)) = env.get(x) {
                if let Some(h) = handles.get(field).cloned() {
                    let label_expr = b::proj(b::var(x.clone()), field.clone());
                    let mut inner_env = env.clone();
                    inner_env.insert(var.clone(), VarInfo::Row(h.children.clone()));
                    let (body_f, body_row) = shred_bag(body, &inner_env, st, path)?;
                    let labelled =
                        add_label_to_outputs(&body_f, &b::proj(b::var(var.clone()), "label"));
                    let def_core = b::forin(var.clone(), b::var(h.var.clone()), labelled);
                    let def = apply_wrapper(def_core, &wrapper);
                    let handle = register_def(st, path, def, &body_row, &wrapper);
                    return Ok((label_expr, handle));
                }
            }
        }
    }

    // Case B — source grouping (domain-elimination rule 2): the loop ranges
    // over a flat source and the body filters it by equality with an
    // expression over the enclosing level.
    if let Expr::If {
        cond,
        then_branch,
        else_branch: None,
    } = body
    {
        if let Some((outer_expr, inner_expr, residual)) = split_correlation(cond, env, &var) {
            let site = st.sites.fresh();
            let label_expr = Expr::NewLabel {
                site,
                captures: vec![("k".to_string(), outer_expr)],
            };
            let (src_f, src_row, guard) = shred_for_source(source, env, st)?;
            let mut inner_env = env.clone();
            inner_env.insert(var.clone(), VarInfo::Row(src_row));
            let (then_f, body_row) = shred_bag(then_branch, &inner_env, st, path)?;
            let label_for_def = Expr::NewLabel {
                site,
                captures: vec![("k".to_string(), inner_expr)],
            };
            let labelled = add_label_to_outputs(&then_f, &label_for_def);
            let mut def_body = labelled;
            if let Some(res) = residual {
                def_body = b::ifthen(res, def_body);
            }
            if let Some(g) = guard {
                let g = g.substitute("__ROWVAR__", &b::var(var.clone()));
                def_body = b::ifthen(g, def_body);
            }
            let def_core = b::forin(var.clone(), src_f, def_body);
            let def = apply_wrapper(def_core, &wrapper);
            let handle = register_def(st, path, def, &body_row, &wrapper);
            return Ok((label_expr, handle));
        }
    }

    Err(NrcError::Other(format!(
        "inner bag at path `{path}` does not match a shreddable pattern \
         (navigate-parent or correlated-filter); rewrite the query or use the standard pipeline"
    )))
}

/// Registers a dictionary definition and builds its handle.
fn register_def(
    st: &mut ShredState,
    path: &str,
    def: Expr,
    body_row: &BTreeMap<String, DictHandle>,
    wrapper: &impl WrapperInfo,
) -> DictHandle {
    st.defs.push((path.to_string(), def));
    st.dict_names
        .insert(path.to_string(), output_dict_name(path));
    DictHandle {
        var: output_dict_name(path),
        children: if wrapper.flattens() {
            BTreeMap::new()
        } else {
            body_row.clone()
        },
    }
}

/// Helper trait so [`register_def`] can ask whether a wrapper discards nested
/// attributes (aggregates produce flat rows).
trait WrapperInfo {
    /// True when the wrapper's output rows are flat.
    fn flattens(&self) -> bool;
}

/// Creates alias assignments `MatDict_path ⇐ <input dict var>` for a nested
/// attribute passed through unchanged, recursively for its descendants.
fn alias_dictionary(h: &DictHandle, st: &mut ShredState, path: &str) -> Result<DictHandle> {
    st.defs.push((path.to_string(), b::var(h.var.clone())));
    st.dict_names
        .insert(path.to_string(), output_dict_name(path));
    let mut children = BTreeMap::new();
    for (attr, child) in &h.children {
        let child_path = format!("{path}_{attr}");
        children.insert(attr.clone(), alias_dictionary(child, st, &child_path)?);
    }
    Ok(DictHandle {
        var: output_dict_name(path),
        children,
    })
}

/// Splits a correlation condition into `(outer expression, inner expression,
/// residual condition)`: one equality conjunct must compare an expression that
/// does not mention the loop variable with one that only mentions it.
fn split_correlation(cond: &Expr, env: &Env, loop_var: &str) -> Option<(Expr, Expr, Option<Expr>)> {
    let conjuncts = flatten_conjuncts(cond);
    let mut outer_inner: Option<(Expr, Expr)> = None;
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        if outer_inner.is_none() {
            if let Expr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } = &c
            {
                let l_uses = left.free_vars().contains(loop_var);
                let r_uses = right.free_vars().contains(loop_var);
                let l_outer = left
                    .free_vars()
                    .iter()
                    .all(|v| v != loop_var && env.contains_key(v));
                let r_outer = right
                    .free_vars()
                    .iter()
                    .all(|v| v != loop_var && env.contains_key(v));
                if r_uses && !l_uses && l_outer {
                    outer_inner = Some((left.as_ref().clone(), right.as_ref().clone()));
                    continue;
                }
                if l_uses && !r_uses && r_outer {
                    outer_inner = Some((right.as_ref().clone(), left.as_ref().clone()));
                    continue;
                }
            }
        }
        residual.push(c);
    }
    let (outer, inner) = outer_inner?;
    let residual = residual.into_iter().reduce(b::and);
    Some((outer, inner, residual))
}

fn flatten_conjuncts(cond: &Expr) -> Vec<Expr> {
    match cond {
        Expr::And(a, b) => {
            let mut out = flatten_conjuncts(a);
            out.extend(flatten_conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Adds a `label := <label_expr>` attribute to every tuple produced in tail
/// position of a bag expression.
fn add_label_to_outputs(e: &Expr, label_expr: &Expr) -> Expr {
    match e {
        Expr::Singleton(inner) => match inner.as_ref() {
            Expr::Tuple(fields) => {
                let mut fields = fields.clone();
                fields.insert(0, ("label".to_string(), label_expr.clone()));
                b::singleton(Expr::Tuple(fields))
            }
            other => b::singleton(Expr::Tuple(vec![
                ("label".to_string(), label_expr.clone()),
                ("value".to_string(), other.clone()),
            ])),
        },
        Expr::For { var, source, body } => b::forin(
            var.clone(),
            source.as_ref().clone(),
            add_label_to_outputs(body, label_expr),
        ),
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => match else_branch {
            None => b::ifthen(
                cond.as_ref().clone(),
                add_label_to_outputs(then_branch, label_expr),
            ),
            Some(eb) => b::ifelse(
                cond.as_ref().clone(),
                add_label_to_outputs(then_branch, label_expr),
                add_label_to_outputs(eb, label_expr),
            ),
        },
        Expr::Union(a, bx) => b::union(
            add_label_to_outputs(a, label_expr),
            add_label_to_outputs(bx, label_expr),
        ),
        Expr::Let { var, value, body } => b::letin(
            var.clone(),
            value.as_ref().clone(),
            add_label_to_outputs(body, label_expr),
        ),
        Expr::SumBy { input, key, values } => {
            let mut key = key.clone();
            key.insert(0, "label".to_string());
            Expr::SumBy {
                input: Box::new(add_label_to_outputs(input, label_expr)),
                key,
                values: values.clone(),
            }
        }
        Expr::GroupBy {
            input,
            key,
            group_attr,
        } => {
            let mut key = key.clone();
            key.insert(0, "label".to_string());
            Expr::GroupBy {
                input: Box::new(add_label_to_outputs(input, label_expr)),
                key,
                group_attr: group_attr.clone(),
            }
        }
        Expr::Dedup(inner) => b::dedup(add_label_to_outputs(inner, label_expr)),
        other => other.clone(),
    }
}

/// Re-applies a peeled aggregate/dedup wrapper around a dictionary definition,
/// extending its key with `label`.
fn apply_wrapper(def: Expr, wrapper: &Wrapper) -> Expr {
    match wrapper {
        Wrapper::None => def,
        Wrapper::SumBy { key, values } => {
            let mut key = key.clone();
            key.insert(0, "label".to_string());
            Expr::SumBy {
                input: Box::new(def),
                key,
                values: values.clone(),
            }
        }
        Wrapper::GroupBy { key, group_attr } => {
            let mut key = key.clone();
            key.insert(0, "label".to_string());
            Expr::GroupBy {
                input: Box::new(def),
                key,
                group_attr: group_attr.clone(),
            }
        }
        Wrapper::Dedup => b::dedup(def),
    }
}

/// Wrapper kinds peeled from inner bag expressions. Public only to the module.
enum Wrapper {
    /// No wrapper.
    None,
    /// A `sumBy` aggregate.
    SumBy {
        /// Grouping attributes.
        key: Vec<String>,
        /// Summed attributes.
        values: Vec<String>,
    },
    /// A `groupBy`.
    GroupBy {
        /// Grouping attributes.
        key: Vec<String>,
        /// Name of the produced group attribute.
        group_attr: String,
    },
    /// A `dedup`.
    Dedup,
}

impl WrapperInfo for Wrapper {
    fn flattens(&self) -> bool {
        matches!(self, Wrapper::SumBy { .. } | Wrapper::GroupBy { .. })
    }
}
