//! The shredded data representation (Section 4).
//!
//! A nested bag is encoded as a flat **top-level bag** in which every
//! bag-valued attribute is replaced by a [`Label`], plus one **dictionary**
//! per nesting level associating labels with the flat contents of the inner
//! bags at that level.
//!
//! Dictionaries use the *relational* representation the paper's implementation
//! settles on: a dictionary is itself a flat bag of tuples carrying a `label`
//! attribute next to the inner attributes (rather than `⟨label, value-bag⟩`
//! pairs), so that every dictionary-level operation is an ordinary flat
//! relational computation that the distributed engine can partition by
//! `label`.
//!
//! Dictionaries are identified by **paths**: the dictionary for attribute
//! `corders` of the top level has path `"corders"`, the dictionary for the
//! `oparts` attribute of its tuples has path `"corders_oparts"`, and so on.

use std::collections::BTreeMap;

use trance_nrc::{Bag, Label, NrcError, Result, Tuple, Type, Value};

/// The shredded encoding of one nested bag: a flat top-level bag plus one flat
/// dictionary per nesting path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShreddedValue {
    /// The flat top-level bag (bag attributes replaced by labels).
    pub top: Bag,
    /// Flat dictionaries, keyed by path (`"corders"`, `"corders_oparts"`, …).
    /// Every row carries a `label` attribute identifying the inner bag it
    /// belongs to.
    pub dicts: BTreeMap<String, Bag>,
}

impl ShreddedValue {
    /// Names of all dictionary paths.
    pub fn dict_paths(&self) -> Vec<&str> {
        self.dicts.keys().map(|s| s.as_str()).collect()
    }

    /// Total number of tuples across the top bag and all dictionaries.
    pub fn total_tuples(&self) -> usize {
        self.top.len() + self.dicts.values().map(Bag::len).sum::<usize>()
    }

    /// The dictionary at `path`, or an empty bag when absent.
    pub fn dict(&self, path: &str) -> Bag {
        self.dicts.get(path).cloned().unwrap_or_else(Bag::empty)
    }
}

/// Allocates label construction sites for value shredding: one site per
/// dictionary path, so labels from different levels never collide.
#[derive(Debug, Default)]
pub struct SiteAllocator {
    next: u32,
    by_path: BTreeMap<String, u32>,
}

impl SiteAllocator {
    /// Creates an allocator starting at site 1.
    pub fn new() -> Self {
        SiteAllocator {
            next: 1,
            by_path: BTreeMap::new(),
        }
    }

    /// Returns the site for `path`, allocating one if needed.
    pub fn site_for(&mut self, path: &str) -> u32 {
        if let Some(s) = self.by_path.get(path) {
            return *s;
        }
        let s = self.next;
        self.next += 1;
        self.by_path.insert(path.to_string(), s);
        s
    }

    /// Returns a fresh, never-reused site.
    pub fn fresh(&mut self) -> u32 {
        let s = self.next;
        self.next += 1;
        s
    }
}

/// The value shredding function: converts a nested bag of tuples into its
/// shredded representation. Labels are generated per inner bag instance,
/// capturing a unique identifier.
pub fn shred_value(nested: &Bag) -> Result<ShreddedValue> {
    let mut out = ShreddedValue::default();
    let mut sites = SiteAllocator::new();
    let mut counter: u64 = 0;
    let top = shred_bag(nested, "", &mut out.dicts, &mut sites, &mut counter)?;
    out.top = top;
    Ok(out)
}

fn shred_bag(
    bag: &Bag,
    path: &str,
    dicts: &mut BTreeMap<String, Bag>,
    sites: &mut SiteAllocator,
    counter: &mut u64,
) -> Result<Bag> {
    let mut out = Bag::empty();
    for item in bag.iter() {
        match item {
            Value::Tuple(t) => {
                let mut flat = Tuple::empty();
                for (name, v) in t.iter() {
                    match v {
                        Value::Bag(inner) => {
                            let child_path = if path.is_empty() {
                                name.to_string()
                            } else {
                                format!("{path}_{name}")
                            };
                            let site = sites.site_for(&child_path);
                            *counter += 1;
                            let label = Label::new(site, vec![Value::Int(*counter as i64)]);
                            // Recursively shred the inner bag's contents and
                            // register one dictionary row per inner tuple.
                            let inner_flat = shred_bag(inner, &child_path, dicts, sites, counter)?;
                            let dict = dicts.entry(child_path).or_insert_with(Bag::empty);
                            for row in inner_flat.iter() {
                                let mut dict_row = Tuple::new([(
                                    "label".to_string(),
                                    Value::Label(label.clone()),
                                )]);
                                match row {
                                    Value::Tuple(rt) => {
                                        for (n, v) in rt.iter() {
                                            dict_row.set(n.to_string(), v.clone());
                                        }
                                    }
                                    other => dict_row.set("value", other.clone()),
                                }
                                dict.push(Value::Tuple(dict_row));
                            }
                            flat.set(name.to_string(), Value::Label(label));
                        }
                        other => flat.set(name.to_string(), other.clone()),
                    }
                }
                out.push(Value::Tuple(flat));
            }
            scalar => out.push(scalar.clone()),
        }
    }
    Ok(out)
}

/// The value unshredding function: re-nests a shredded representation.
///
/// `structure` describes which top-level attributes are labels into which
/// dictionary paths; it is normally obtained from [`nesting_structure`] of the
/// original nested type, or from the shredded query's output structure.
pub fn unshred_value(shredded: &ShreddedValue, structure: &NestingStructure) -> Result<Bag> {
    // Pre-index every dictionary by label for linear-time reconstruction.
    let mut index: BTreeMap<&str, BTreeMap<Value, Vec<&Value>>> = BTreeMap::new();
    for (path, bag) in &shredded.dicts {
        let mut by_label: BTreeMap<Value, Vec<&Value>> = BTreeMap::new();
        for row in bag.iter() {
            let label = row.as_tuple()?.get_or_err("label", "unshred")?.clone();
            by_label.entry(label).or_default().push(row);
        }
        index.insert(path.as_str(), by_label);
    }
    unshred_bag(&shredded.top, structure, "", &index)
}

fn unshred_bag(
    flat: &Bag,
    structure: &NestingStructure,
    path: &str,
    index: &BTreeMap<&str, BTreeMap<Value, Vec<&Value>>>,
) -> Result<Bag> {
    let mut out = Bag::empty();
    for row in flat.iter() {
        let t = match row {
            Value::Tuple(t) => t,
            other => {
                out.push(other.clone());
                continue;
            }
        };
        let mut rebuilt = Tuple::empty();
        for (name, v) in t.iter() {
            if name == "label" && !path.is_empty() {
                continue; // internal bookkeeping attribute
            }
            match structure.children.get(name) {
                Some(child) if matches!(v, Value::Label(_) | Value::Null) => {
                    let child_path = if path.is_empty() {
                        name.to_string()
                    } else {
                        format!("{path}_{name}")
                    };
                    let rows: Vec<Value> = match v {
                        Value::Label(_) => index
                            .get(child_path.as_str())
                            .and_then(|m| m.get(v))
                            .map(|rows| rows.iter().map(|r| (*r).clone()).collect())
                            .unwrap_or_default(),
                        _ => Vec::new(),
                    };
                    let inner = unshred_bag(&Bag::new(rows), child, &child_path, index)?;
                    rebuilt.set(name.to_string(), Value::Bag(inner));
                }
                _ => rebuilt.set(name.to_string(), v.clone()),
            }
        }
        out.push(Value::Tuple(rebuilt));
    }
    Ok(out)
}

/// Describes which attributes of a (shredded) bag are labels referring to
/// child dictionaries, recursively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NestingStructure {
    /// Child structures keyed by the bag-valued attribute name.
    pub children: BTreeMap<String, NestingStructure>,
}

impl NestingStructure {
    /// A flat structure (no nested attributes).
    pub fn flat() -> Self {
        NestingStructure::default()
    }

    /// Adds a nested attribute.
    pub fn with_child(mut self, attr: impl Into<String>, child: NestingStructure) -> Self {
        self.children.insert(attr.into(), child);
        self
    }

    /// All dictionary paths implied by this structure, in depth-first order.
    pub fn paths(&self) -> Vec<String> {
        fn go(s: &NestingStructure, prefix: &str, out: &mut Vec<String>) {
            for (attr, child) in &s.children {
                let p = if prefix.is_empty() {
                    attr.clone()
                } else {
                    format!("{prefix}_{attr}")
                };
                out.push(p.clone());
                go(child, &p, out);
            }
        }
        let mut out = Vec::new();
        go(self, "", &mut out);
        out
    }
}

/// Derives the nesting structure of a nested bag *type*.
pub fn nesting_structure(ty: &Type) -> Result<NestingStructure> {
    let elem = match ty {
        Type::Bag(inner) => inner.as_ref(),
        _ => {
            return Err(NrcError::TypeMismatch {
                expected: "bag type".into(),
                found: ty.to_string(),
                context: "nesting_structure".into(),
            })
        }
    };
    let mut out = NestingStructure::flat();
    if let Type::Tuple(tt) = elem {
        for (name, ft) in &tt.fields {
            if ft.is_bag() {
                out.children.insert(name.clone(), nesting_structure(ft)?);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cop_value() -> Bag {
        Bag::new(vec![
            Value::tuple([
                ("cname", Value::str("alice")),
                (
                    "corders",
                    Value::bag(vec![
                        Value::tuple([
                            ("odate", Value::Date(10)),
                            (
                                "oparts",
                                Value::bag(vec![
                                    Value::tuple([
                                        ("pid", Value::Int(1)),
                                        ("qty", Value::Real(3.0)),
                                    ]),
                                    Value::tuple([
                                        ("pid", Value::Int(2)),
                                        ("qty", Value::Real(1.0)),
                                    ]),
                                ]),
                            ),
                        ]),
                        Value::tuple([("odate", Value::Date(11)), ("oparts", Value::empty_bag())]),
                    ]),
                ),
            ]),
            Value::tuple([
                ("cname", Value::str("bob")),
                ("corders", Value::empty_bag()),
            ]),
        ])
    }

    fn cop_type() -> Type {
        Type::bag_of([
            ("cname", Type::string()),
            (
                "corders",
                Type::bag_of([
                    ("odate", Type::date()),
                    (
                        "oparts",
                        Type::bag_of([("pid", Type::int()), ("qty", Type::real())]),
                    ),
                ]),
            ),
        ])
    }

    #[test]
    fn shredding_produces_flat_top_and_per_level_dictionaries() {
        let shredded = shred_value(&cop_value()).unwrap();
        assert_eq!(shredded.top.len(), 2);
        assert_eq!(shredded.dict_paths(), vec!["corders", "corders_oparts"]);
        assert_eq!(shredded.dict("corders").len(), 2);
        assert_eq!(shredded.dict("corders_oparts").len(), 2);
        // Top-level rows are flat: corders is a label.
        for row in shredded.top.iter() {
            assert!(matches!(
                row.as_tuple().unwrap().get("corders"),
                Some(Value::Label(_))
            ));
        }
        // Dictionary rows carry a label column plus the inner attributes.
        for row in shredded.dict("corders").iter() {
            let t = row.as_tuple().unwrap();
            assert!(t.get("label").is_some());
            assert!(t.get("odate").is_some());
            assert!(matches!(t.get("oparts"), Some(Value::Label(_))));
        }
    }

    #[test]
    fn unshredding_round_trips_the_value() {
        let original = cop_value();
        let shredded = shred_value(&original).unwrap();
        let structure = nesting_structure(&cop_type()).unwrap();
        let rebuilt = unshred_value(&shredded, &structure).unwrap();
        assert!(
            rebuilt.multiset_eq(&original),
            "round trip must preserve the nested value"
        );
    }

    #[test]
    fn empty_inner_bags_survive_the_round_trip() {
        let original = cop_value();
        let shredded = shred_value(&original).unwrap();
        let structure = nesting_structure(&cop_type()).unwrap();
        let rebuilt = unshred_value(&shredded, &structure).unwrap();
        // bob has an empty corders bag; it must still be an empty bag (not missing).
        let bob = rebuilt
            .iter()
            .find(|r| r.as_tuple().unwrap().get("cname") == Some(&Value::str("bob")))
            .unwrap();
        assert_eq!(
            bob.as_tuple().unwrap().get("corders"),
            Some(&Value::empty_bag())
        );
    }

    #[test]
    fn nesting_structure_paths_follow_the_type() {
        let s = nesting_structure(&cop_type()).unwrap();
        assert_eq!(
            s.paths(),
            vec!["corders".to_string(), "corders_oparts".to_string()]
        );
    }

    #[test]
    fn labels_use_distinct_sites_per_path() {
        let shredded = shred_value(&cop_value()).unwrap();
        let top_label_site =
            shredded
                .top
                .iter()
                .find_map(|r| match r.as_tuple().unwrap().get("corders") {
                    Some(Value::Label(l)) => Some(l.site),
                    _ => None,
                });
        let inner_label_site = shredded.dict("corders").iter().find_map(|r| {
            match r.as_tuple().unwrap().get("oparts") {
                Some(Value::Label(l)) => Some(l.site),
                _ => None,
            }
        });
        assert_ne!(top_label_site, inner_label_site);
    }
}
