//! Unshredding of query outputs.
//!
//! Given the values produced by a shredded program (the flat top bag plus one
//! flat dictionary per output path) and the output's nesting structure, this
//! module reassembles the nested value. The distributed variant (joining
//! dictionaries level by level) lives in `trance-compiler`; this one operates
//! on collected values and defines the semantics the distributed variant must
//! match.

use std::collections::BTreeMap;

use trance_nrc::{Bag, Env, Result, Value};

use crate::query::{output_dict_name, ShreddedQuery, TOP_BAG};
use crate::repr::{unshred_value, NestingStructure, ShreddedValue};

/// Reassembles the nested output of a shredded program from an evaluation
/// environment containing the program's assignments (as produced by
/// [`trance_nrc::Program::eval_all`]).
pub fn unshred_program_output(shredded: &ShreddedQuery, env: &Env) -> Result<Bag> {
    let top = env.get_or_err(TOP_BAG)?.clone().into_bag()?;
    let mut dicts: BTreeMap<String, Bag> = BTreeMap::new();
    for path in shredded.structure.paths() {
        let name = shredded
            .dict_names
            .get(&path)
            .cloned()
            .unwrap_or_else(|| output_dict_name(&path));
        if let Some(v) = env.get(&name) {
            dicts.insert(path.clone(), v.clone().into_bag()?);
        }
    }
    let value = ShreddedValue { top, dicts };
    unshred_value(&value, &shredded.structure)
}

/// Reassembles a nested bag from explicitly provided pieces (used by the
/// distributed pipeline after collecting its outputs).
pub fn unshred_pieces(
    top: Bag,
    dicts: BTreeMap<String, Bag>,
    structure: &NestingStructure,
) -> Result<Bag> {
    let value = ShreddedValue { top, dicts };
    unshred_value(&value, structure)
}

/// Convenience: evaluates a shredded program locally (reference evaluator) on
/// shredded inputs and returns the unshredded nested result. Primarily used by
/// tests to validate the shredding transformation against direct evaluation.
pub fn eval_and_unshred(shredded: &ShreddedQuery, inputs: &Env) -> Result<Bag> {
    let env = shredded.program.eval_all(inputs)?;
    unshred_program_output(shredded, &env)
}

/// Binds the shredded representation of a nested input under the naming
/// convention the shredded program expects (`X__F`, `X__D_<path>`).
pub fn bind_shredded_input(env: &mut Env, input_name: &str, shredded: &ShreddedValue) {
    env.bind(
        crate::query::flat_input_name(input_name),
        Value::Bag(shredded.top.clone()),
    );
    for (path, bag) in &shredded.dicts {
        env.bind(
            crate::query::input_dict_name(input_name, path),
            Value::Bag(bag.clone()),
        );
    }
}
