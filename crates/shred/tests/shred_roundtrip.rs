//! End-to-end validation of the query shredding transformation: for each
//! query family of the paper's benchmark (flat-to-nested, nested-to-nested,
//! nested-to-flat), shredding the inputs, running the shredded program with
//! the reference evaluator and unshredding must reproduce exactly what direct
//! evaluation of the original query produces.

use trance_nrc::builder::*;
use trance_nrc::{eval, Bag, Env, Value};
use trance_shred::{
    bind_shredded_input, eval_and_unshred, shred_query, shred_value, NestingStructure,
    ShreddedInputDecl,
};

fn cop_value() -> Value {
    Value::bag(vec![
        Value::tuple([
            ("cname", Value::str("alice")),
            (
                "corders",
                Value::bag(vec![
                    Value::tuple([
                        ("odate", Value::Date(10)),
                        (
                            "oparts",
                            Value::bag(vec![
                                Value::tuple([("pid", Value::Int(1)), ("qty", Value::Real(3.0))]),
                                Value::tuple([("pid", Value::Int(2)), ("qty", Value::Real(2.0))]),
                                Value::tuple([("pid", Value::Int(1)), ("qty", Value::Real(1.0))]),
                            ]),
                        ),
                    ]),
                    Value::tuple([("odate", Value::Date(11)), ("oparts", Value::empty_bag())]),
                ]),
            ),
        ]),
        Value::tuple([
            ("cname", Value::str("bob")),
            (
                "corders",
                Value::bag(vec![Value::tuple([
                    ("odate", Value::Date(12)),
                    (
                        "oparts",
                        Value::bag(vec![Value::tuple([
                            ("pid", Value::Int(2)),
                            ("qty", Value::Real(5.0)),
                        ])]),
                    ),
                ])]),
            ),
        ]),
        Value::tuple([
            ("cname", Value::str("carol")),
            ("corders", Value::empty_bag()),
        ]),
    ])
}

fn part_value() -> Value {
    Value::bag(vec![
        Value::tuple([
            ("pid", Value::Int(1)),
            ("pname", Value::str("bolt")),
            ("price", Value::Real(2.0)),
        ]),
        Value::tuple([
            ("pid", Value::Int(2)),
            ("pname", Value::str("nut")),
            ("price", Value::Real(0.5)),
        ]),
        Value::tuple([
            ("pid", Value::Int(3)),
            ("pname", Value::str("washer")),
            ("price", Value::Real(0.1)),
        ]),
    ])
}

fn cop_structure() -> NestingStructure {
    NestingStructure::flat().with_child(
        "corders",
        NestingStructure::flat().with_child("oparts", NestingStructure::flat()),
    )
}

/// The running example (Example 1): nested-to-nested with a join and sumBy at
/// the innermost level.
fn running_example_query() -> trance_nrc::Expr {
    forin(
        "cop",
        var("COP"),
        singleton(tuple([
            ("cname", proj(var("cop"), "cname")),
            (
                "corders",
                forin(
                    "co",
                    proj(var("cop"), "corders"),
                    singleton(tuple([
                        ("odate", proj(var("co"), "odate")),
                        (
                            "oparts",
                            sum_by(
                                forin(
                                    "op",
                                    proj(var("co"), "oparts"),
                                    forin(
                                        "p",
                                        var("Part"),
                                        ifthen(
                                            cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                                            singleton(tuple([
                                                ("pname", proj(var("p"), "pname")),
                                                (
                                                    "total",
                                                    mul(
                                                        proj(var("op"), "qty"),
                                                        proj(var("p"), "price"),
                                                    ),
                                                ),
                                            ])),
                                        ),
                                    ),
                                ),
                                &["pname"],
                                &["total"],
                            ),
                        ),
                    ])),
                ),
            ),
        ])),
    )
}

/// Runs a query both directly and through the shredded pipeline (local
/// evaluation), asserting multiset-equal results.
fn assert_shredding_equivalent(
    query: &trance_nrc::Expr,
    nested_inputs: &[(&str, Value, NestingStructure)],
    flat_inputs: &[(&str, Value)],
) -> (Bag, Bag) {
    // Direct evaluation.
    let mut direct_env = Env::new();
    for (name, v, _) in nested_inputs {
        direct_env.bind(name.to_string(), v.clone());
    }
    for (name, v) in flat_inputs {
        direct_env.bind(name.to_string(), v.clone());
    }
    let expected = eval(query, &direct_env).unwrap().into_bag().unwrap();

    // Shredded evaluation.
    let decls: Vec<ShreddedInputDecl> = nested_inputs
        .iter()
        .map(|(name, _, s)| ShreddedInputDecl::new(name.to_string(), s.clone()))
        .collect();
    let shredded = shred_query(query, &decls).expect("query must be shreddable");
    let mut env = Env::new();
    for (name, v, _) in nested_inputs {
        let sv = shred_value(v.as_bag().unwrap()).unwrap();
        bind_shredded_input(&mut env, name, &sv);
    }
    for (name, v) in flat_inputs {
        env.bind(name.to_string(), v.clone());
    }
    let actual = eval_and_unshred(&shredded, &env).unwrap();
    assert!(
        expected.multiset_eq(&actual),
        "shredded result differs from direct evaluation\nexpected: {expected}\nactual:   {actual}"
    );
    (expected, actual)
}

#[test]
fn running_example_nested_to_nested() {
    let (expected, _) = assert_shredding_equivalent(
        &running_example_query(),
        &[("COP", cop_value(), cop_structure())],
        &[("Part", part_value())],
    );
    // Sanity: alice has two orders, one with aggregated parts, one empty.
    assert_eq!(expected.len(), 3);
}

#[test]
fn flat_to_nested_grouping() {
    // Build a one-level nested output from two flat inputs:
    // for o in Orders union { <odate := o.odate,
    //    oparts := for l in Lineitem union if l.okey == o.okey then {<pid, qty>} > }
    let query = forin(
        "o",
        var("Orders"),
        singleton(tuple([
            ("odate", proj(var("o"), "odate")),
            (
                "oparts",
                forin(
                    "l",
                    var("Lineitem"),
                    ifthen(
                        cmp_eq(proj(var("l"), "okey"), proj(var("o"), "okey")),
                        singleton(tuple([
                            ("pid", proj(var("l"), "pid")),
                            ("qty", proj(var("l"), "qty")),
                        ])),
                    ),
                ),
            ),
        ])),
    );
    let orders = Value::bag(vec![
        Value::tuple([("okey", Value::Int(1)), ("odate", Value::Date(100))]),
        Value::tuple([("okey", Value::Int(2)), ("odate", Value::Date(101))]),
        Value::tuple([("okey", Value::Int(3)), ("odate", Value::Date(102))]), // no lineitems
    ]);
    let lineitem = Value::bag(vec![
        Value::tuple([
            ("okey", Value::Int(1)),
            ("pid", Value::Int(10)),
            ("qty", Value::Real(1.0)),
        ]),
        Value::tuple([
            ("okey", Value::Int(1)),
            ("pid", Value::Int(11)),
            ("qty", Value::Real(2.0)),
        ]),
        Value::tuple([
            ("okey", Value::Int(2)),
            ("pid", Value::Int(10)),
            ("qty", Value::Real(3.0)),
        ]),
    ]);
    let (expected, _) =
        assert_shredding_equivalent(&query, &[], &[("Orders", orders), ("Lineitem", lineitem)]);
    assert_eq!(expected.len(), 3);
    // Order 3 must keep an empty oparts bag.
    let o3 = expected
        .iter()
        .find(|r| r.as_tuple().unwrap().get("odate") == Some(&Value::Date(102)))
        .unwrap();
    assert_eq!(
        o3.as_tuple().unwrap().get("oparts"),
        Some(&Value::empty_bag())
    );
}

#[test]
fn nested_to_flat_aggregation() {
    // Navigate both levels of COP and aggregate to a flat result per customer.
    let query = sum_by(
        forin(
            "cop",
            var("COP"),
            forin(
                "co",
                proj(var("cop"), "corders"),
                forin(
                    "op",
                    proj(var("co"), "oparts"),
                    forin(
                        "p",
                        var("Part"),
                        ifthen(
                            cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                            singleton(tuple([
                                ("cname", proj(var("cop"), "cname")),
                                (
                                    "spent",
                                    mul(proj(var("op"), "qty"), proj(var("p"), "price")),
                                ),
                            ])),
                        ),
                    ),
                ),
            ),
        ),
        &["cname"],
        &["spent"],
    );
    let (expected, _) = assert_shredding_equivalent(
        &query,
        &[("COP", cop_value(), cop_structure())],
        &[("Part", part_value())],
    );
    // alice: 3*2 + 2*0.5 + 1*2 = 9.0 ; bob: 5*0.5 = 2.5 ; carol absent.
    assert_eq!(expected.len(), 2);
    let alice = expected
        .iter()
        .find(|r| r.as_tuple().unwrap().get("cname") == Some(&Value::str("alice")))
        .unwrap();
    assert_eq!(
        alice.as_tuple().unwrap().get("spent"),
        Some(&Value::Real(9.0))
    );
}

#[test]
fn two_level_flat_to_nested() {
    // Customers -> orders -> items built from three flat inputs.
    let query = forin(
        "c",
        var("Customer"),
        singleton(tuple([
            ("cname", proj(var("c"), "cname")),
            (
                "corders",
                forin(
                    "o",
                    var("Orders"),
                    ifthen(
                        cmp_eq(proj(var("o"), "ckey"), proj(var("c"), "ckey")),
                        singleton(tuple([
                            ("odate", proj(var("o"), "odate")),
                            (
                                "oparts",
                                forin(
                                    "l",
                                    var("Lineitem"),
                                    ifthen(
                                        cmp_eq(proj(var("l"), "okey"), proj(var("o"), "okey")),
                                        singleton(tuple([
                                            ("pid", proj(var("l"), "pid")),
                                            ("qty", proj(var("l"), "qty")),
                                        ])),
                                    ),
                                ),
                            ),
                        ])),
                    ),
                ),
            ),
        ])),
    );
    let customer = Value::bag(vec![
        Value::tuple([("ckey", Value::Int(1)), ("cname", Value::str("alice"))]),
        Value::tuple([("ckey", Value::Int(2)), ("cname", Value::str("bob"))]),
    ]);
    let orders = Value::bag(vec![
        Value::tuple([
            ("okey", Value::Int(10)),
            ("ckey", Value::Int(1)),
            ("odate", Value::Date(5)),
        ]),
        Value::tuple([
            ("okey", Value::Int(11)),
            ("ckey", Value::Int(1)),
            ("odate", Value::Date(6)),
        ]),
        Value::tuple([
            ("okey", Value::Int(12)),
            ("ckey", Value::Int(2)),
            ("odate", Value::Date(7)),
        ]),
    ]);
    let lineitem = Value::bag(vec![
        Value::tuple([
            ("okey", Value::Int(10)),
            ("pid", Value::Int(1)),
            ("qty", Value::Real(4.0)),
        ]),
        Value::tuple([
            ("okey", Value::Int(12)),
            ("pid", Value::Int(2)),
            ("qty", Value::Real(6.0)),
        ]),
    ]);
    assert_shredding_equivalent(
        &query,
        &[],
        &[
            ("Customer", customer),
            ("Orders", orders),
            ("Lineitem", lineitem),
        ],
    );
}

#[test]
fn shredded_program_shape_matches_the_paper() {
    // The running example must shred into exactly two dictionary assignments
    // (corders, corders_oparts) plus the top bag, with the oparts dictionary
    // containing the localized join + aggregation.
    let shredded = shred_query(
        &running_example_query(),
        &[ShreddedInputDecl::new("COP", cop_structure())],
    )
    .unwrap();
    let names = shredded.program.assigned_names();
    assert!(names.contains(&"MatDict_corders"));
    assert!(names.contains(&"MatDict_corders_oparts"));
    assert_eq!(*names.last().unwrap(), "TopBag");
    assert_eq!(
        shredded.structure.paths(),
        vec!["corders", "corders_oparts"]
    );
    // The program's inputs are the shredded COP plus the flat Part.
    let inputs = shredded.input_names();
    assert!(inputs.contains(&"COP__F".to_string()));
    assert!(inputs.contains(&"COP__D_corders".to_string()));
    assert!(inputs.contains(&"COP__D_corders_oparts".to_string()));
    assert!(inputs.contains(&"Part".to_string()));
}
