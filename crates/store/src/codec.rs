//! The binary wire format of spill frames: little-endian primitives plus a
//! lossless [`trance_nrc::Value`] encoding.
//!
//! Frames are written through a [`ByteWriter`] and decoded through a
//! [`ByteReader`]; anything that can cross the memory/disk boundary
//! implements [`Spillable`]. Row chunks (`Vec<Value>`) are encoded here; the
//! columnar batch layout is encoded by `trance-dist` (which owns the batch
//! type) on top of the same primitives.
//!
//! Every length written into a frame goes through [`ByteWriter::len_u32`]:
//! a collection too large for the `u32` length prefix fails with a typed
//! [`CodecError::LengthOverflow`] instead of silently truncating the count
//! and corrupting the frame. Decoders bound every pre-allocation by the
//! bytes actually remaining, so a malicious count cannot balloon memory.

use std::io;

use trance_nrc::{Bag, Label, Tuple, Value};

/// A typed encoding error. Carried across the `io::Error` boundary (the
/// [`Spillable`] trait speaks `io::Result`) as an
/// [`io::ErrorKind::InvalidData`] error whose source downcasts back to
/// `CodecError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A collection is too large for the format's `u32` length prefix.
    LengthOverflow {
        /// What was being encoded (e.g. `"string bytes"`, `"bag items"`).
        what: &'static str,
        /// The offending length.
        len: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::LengthOverflow { what, len } => {
                write!(f, "{what} length {len} exceeds the u32 frame limit")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Growable byte buffer with little-endian append helpers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (little-endian).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (NaN payloads survive).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length as a checked `u32` prefix: lengths beyond
    /// `u32::MAX` fail with [`CodecError::LengthOverflow`] instead of
    /// wrapping and corrupting the frame.
    pub fn len_u32(&mut self, n: usize, what: &'static str) -> io::Result<()> {
        let v = u32::try_from(n).map_err(|_| CodecError::LengthOverflow { what, len: n })?;
        self.u32(v);
        Ok(())
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> io::Result<()> {
        self.len_u32(s.len(), "string bytes")?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    /// Appends raw bytes (caller is responsible for framing).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over an encoded frame; every read checks bounds and returns
/// `InvalidData` on truncation, so a corrupt spill file surfaces as an error
/// instead of a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "truncated spill frame")
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bounds a decoded element count by the bytes actually left in the
    /// frame: every encoded element occupies at least one byte, so a
    /// pre-allocation beyond `remaining()` can only come from a corrupt or
    /// malicious count — clamping keeps the decoder's allocation
    /// proportional to the input instead of to the attacker's claim.
    pub fn bounded_capacity(&self, n: usize) -> usize {
        n.min(self.remaining())
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(truncated());
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(bytes))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> io::Result<i64> {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(self.take(8)?);
        Ok(i64::from_le_bytes(bytes))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 spill string"))
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> io::Result<&'a [u8]> {
        self.take(n)
    }
}

/// A type that can cross the memory/disk boundary as one spill frame.
pub trait Spillable: Sized {
    /// Appends the encoded form to `w`. Fails with a typed
    /// [`CodecError`]-backed error when the value cannot be represented
    /// (e.g. a collection too large for a length prefix).
    fn encode(&self, w: &mut ByteWriter) -> io::Result<()>;
    /// Decodes one value previously written by [`Spillable::encode`].
    fn decode(r: &mut ByteReader<'_>) -> io::Result<Self>;
}

// Value tags — part of the on-disk format, do not renumber.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_REAL: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_DATE: u8 = 5;
const TAG_LABEL: u8 = 6;
const TAG_TUPLE: u8 = 7;
const TAG_BAG: u8 = 8;

/// Encodes one [`Value`] (all nine variants, recursively).
pub fn encode_value(v: &Value, w: &mut ByteWriter) -> io::Result<()> {
    match v {
        Value::Null => w.u8(TAG_NULL),
        Value::Bool(b) => {
            w.u8(TAG_BOOL);
            w.u8(u8::from(*b));
        }
        Value::Int(i) => {
            w.u8(TAG_INT);
            w.i64(*i);
        }
        Value::Real(x) => {
            w.u8(TAG_REAL);
            w.f64(*x);
        }
        Value::Str(s) => {
            w.u8(TAG_STR);
            w.str(s)?;
        }
        Value::Date(d) => {
            w.u8(TAG_DATE);
            w.i64(*d);
        }
        Value::Label(l) => {
            w.u8(TAG_LABEL);
            w.u32(l.site);
            w.len_u32(l.values.len(), "label values")?;
            for v in l.values.iter() {
                encode_value(v, w)?;
            }
        }
        Value::Tuple(t) => {
            w.u8(TAG_TUPLE);
            w.len_u32(t.fields().len(), "tuple fields")?;
            for (name, value) in t.fields() {
                w.str(name)?;
                encode_value(value, w)?;
            }
        }
        Value::Bag(b) => {
            w.u8(TAG_BAG);
            w.len_u32(b.len(), "bag items")?;
            for v in b.iter() {
                encode_value(v, w)?;
            }
        }
    }
    Ok(())
}

/// Decodes one [`Value`] written by [`encode_value`].
pub fn decode_value(r: &mut ByteReader<'_>) -> io::Result<Value> {
    Ok(match r.u8()? {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(r.u8()? != 0),
        TAG_INT => Value::Int(r.i64()?),
        TAG_REAL => Value::Real(r.f64()?),
        TAG_STR => Value::Str(r.str()?),
        TAG_DATE => Value::Date(r.i64()?),
        TAG_LABEL => {
            let site = r.u32()?;
            let n = r.u32()? as usize;
            let mut values = Vec::with_capacity(r.bounded_capacity(n));
            for _ in 0..n {
                values.push(decode_value(r)?);
            }
            Value::Label(Label::new(site, values))
        }
        TAG_TUPLE => {
            let n = r.u32()? as usize;
            let mut fields = Vec::with_capacity(r.bounded_capacity(n));
            for _ in 0..n {
                let name = r.str()?;
                fields.push((name, decode_value(r)?));
            }
            Value::Tuple(Tuple::new(fields))
        }
        TAG_BAG => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(r.bounded_capacity(n));
            for _ in 0..n {
                items.push(decode_value(r)?);
            }
            Value::Bag(Bag::new(items))
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown value tag {other} in spill frame"),
            ))
        }
    })
}

/// Row chunks spill as a count followed by the encoded rows.
impl Spillable for Vec<Value> {
    fn encode(&self, w: &mut ByteWriter) -> io::Result<()> {
        w.len_u32(self.len(), "row chunk")?;
        for v in self {
            encode_value(v, w)?;
        }
        Ok(())
    }

    fn decode(r: &mut ByteReader<'_>) -> io::Result<Vec<Value>> {
        let n = r.u32()? as usize;
        let mut out = Vec::with_capacity(r.bounded_capacity(n));
        for _ in 0..n {
            out.push(decode_value(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let mut w = ByteWriter::new();
        encode_value(v, &mut w).expect("encode");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_value(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "decoder must consume the whole frame");
        back
    }

    #[test]
    fn every_value_variant_round_trips() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Real(3.5),
            Value::Real(f64::NAN),
            Value::str("héllo"),
            Value::Date(19_000),
            Value::Label(Label::new(7, vec![Value::Int(1), Value::str("k")])),
            Value::tuple([
                ("a", Value::Int(1)),
                ("b", Value::bag(vec![Value::tuple([("x", Value::Null)])])),
            ]),
        ];
        for v in &values {
            let back = round_trip(v);
            match v {
                // NaN != NaN: compare bit patterns instead.
                Value::Real(x) if x.is_nan() => match back {
                    Value::Real(y) => assert_eq!(x.to_bits(), y.to_bits()),
                    other => panic!("expected real, got {other:?}"),
                },
                _ => assert_eq!(*v, back),
            }
        }
    }

    #[test]
    fn row_chunks_round_trip() {
        let rows = vec![Value::Int(1), Value::str("x"), Value::Null];
        let mut w = ByteWriter::new();
        rows.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let back = Vec::<Value>::decode(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(rows, back);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        let mut w = ByteWriter::new();
        encode_value(&Value::str("truncate me"), &mut w).unwrap();
        let bytes = w.into_bytes();
        let cut = &bytes[..bytes.len() - 3];
        assert!(decode_value(&mut ByteReader::new(cut)).is_err());
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn over_limit_lengths_error_instead_of_truncating() {
        // A 4 GiB collection cannot be materialized in a unit test; the
        // checked length prefix is exercised directly.
        let mut w = ByteWriter::new();
        let too_big = (u32::MAX as usize) + 1;
        let err = w.len_u32(too_big, "bag items").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let codec = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<CodecError>())
            .expect("typed codec error");
        assert_eq!(
            *codec,
            CodecError::LengthOverflow {
                what: "bag items",
                len: too_big
            }
        );
        // An in-range length still writes the exact prefix.
        let mut ok = ByteWriter::new();
        ok.len_u32(7, "bag items").unwrap();
        assert_eq!(ok.into_bytes(), 7u32.to_le_bytes());
    }

    #[test]
    fn corrupt_counts_do_not_over_allocate() {
        // A bag frame claiming u32::MAX items backed by 1 byte of payload:
        // the decoder must fail on truncation without ballooning memory.
        let mut bytes = vec![TAG_BAG];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.push(TAG_NULL);
        assert!(decode_value(&mut ByteReader::new(&bytes)).is_err());
    }
}
