//! Disk-backed spill files: versioned [`crate::wire`] frames inside a
//! scoped, per-run temporary directory.
//!
//! Lifecycle guarantees (asserted by tests):
//!
//! * every [`SpillHandle`] deletes its file when the last reference drops —
//!   collections that spilled and are no longer live leave nothing behind;
//! * the [`SpillManager`] removes its whole directory on drop, covering the
//!   error path and worker-thread panics (a panicking `std::thread::scope`
//!   worker unwinds into the owner of the context, whose manager still
//!   drops).
//!
//! The read side trusts nothing: frame lengths are validated against both
//! the per-frame cap and the bytes actually left in the file, payloads are
//! checksummed, and any violation surfaces as
//! [`io::ErrorKind::InvalidData`] instead of a panic or an oversized
//! allocation.

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::wire::{self, DEFAULT_MAX_FRAME, FRAME_SPILL};

/// Monotonic discriminator so two managers created in the same nanosecond
/// (e.g. by parallel tests) never collide on a directory name.
static MANAGER_SEQ: AtomicU64 = AtomicU64::new(0);

/// A scoped spill directory: every spill file of one run lives under it, and
/// the whole directory is removed when the manager drops.
#[derive(Debug)]
pub struct SpillManager {
    dir: PathBuf,
    counter: AtomicU64,
}

impl SpillManager {
    /// Creates a fresh, uniquely named spill directory under `base` (the
    /// system temp directory when `None`).
    pub fn new(base: Option<&Path>) -> io::Result<SpillManager> {
        let base = base
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = MANAGER_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = base.join(format!(
            "trance-spill-{}-{nanos:x}-{seq}",
            std::process::id()
        ));
        fs::create_dir_all(&dir)?;
        Ok(SpillManager {
            dir,
            counter: AtomicU64::new(0),
        })
    }

    /// The scoped directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Opens a new spill file for writing.
    pub fn create(&self) -> io::Result<SpillFile> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("spill-{n}.bin"));
        let file = File::create(&path)?;
        Ok(SpillFile {
            path: Some(path),
            writer: BufWriter::new(file),
            frames: 0,
            bytes: 0,
        })
    }

    /// Number of spill files currently on disk in this manager's directory
    /// (tests assert this returns 0 once all collections are dropped).
    pub fn live_files(&self) -> io::Result<usize> {
        Ok(fs::read_dir(&self.dir)?.count())
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Write side of one spill file: append [`crate::wire`] frames, then
/// [`SpillFile::finish`] into a [`SpillHandle`].
///
/// An **abandoned** write side (dropped before `finish`, e.g. because the
/// spilling operator hit an error partway through) deletes its partial file
/// immediately, so a failed spill never leaves bytes on disk waiting for the
/// manager's directory teardown.
#[derive(Debug)]
pub struct SpillFile {
    /// `Some` while writing; taken by [`SpillFile::finish`] so the `Drop`
    /// impl only deletes files that were never sealed.
    path: Option<PathBuf>,
    writer: BufWriter<File>,
    frames: u64,
    bytes: u64,
}

impl SpillFile {
    /// Appends one frame (16-byte wire header + checksummed payload).
    pub fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        let written = wire::write_frame(&mut self.writer, FRAME_SPILL, frame)?;
        self.frames += 1;
        self.bytes += written;
        Ok(())
    }

    /// Frames appended so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Bytes written so far (frame headers included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flushes and seals the file into a read handle.
    pub fn finish(mut self) -> io::Result<SpillHandle> {
        self.writer.flush()?;
        let path = self
            .path
            .take()
            .ok_or_else(|| io::Error::other("spill file finished twice"))?;
        Ok(SpillHandle {
            path,
            frames: self.frames,
            bytes: self.bytes,
        })
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let _ = fs::remove_file(path);
        }
    }
}

/// A sealed spill file. Owns the on-disk bytes: the file is deleted when the
/// handle drops.
#[derive(Debug)]
pub struct SpillHandle {
    path: PathBuf,
    frames: u64,
    bytes: u64,
}

impl SpillHandle {
    /// Number of frames in the file.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total file size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Opens a streaming reader over the frames. The reader validates every
    /// frame against the *actual* on-disk size, so a file truncated behind
    /// our back fails with `InvalidData` instead of a huge allocation.
    pub fn open(&self) -> io::Result<SpillReader> {
        let file = File::open(&self.path)?;
        let on_disk = file.metadata()?.len();
        Ok(SpillReader {
            reader: BufReader::new(file),
            remaining_frames: self.frames,
            remaining_bytes: on_disk,
        })
    }
}

impl Drop for SpillHandle {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Streaming reader over a spill file: one frame at a time, never the whole
/// partition.
#[derive(Debug)]
pub struct SpillReader {
    reader: BufReader<File>,
    remaining_frames: u64,
    remaining_bytes: u64,
}

impl SpillReader {
    /// Reads the next frame, or `None` when the file is exhausted.
    ///
    /// Every frame is validated before its payload is read: magic, version,
    /// a [`DEFAULT_MAX_FRAME`] payload cap, the bytes actually remaining in
    /// the file, and the payload checksum. A corrupt or truncated file
    /// surfaces as [`io::ErrorKind::InvalidData`].
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.remaining_frames == 0 {
            return Ok(None);
        }
        let frame = wire::read_frame(
            &mut self.reader,
            DEFAULT_MAX_FRAME,
            Some(self.remaining_bytes),
        )?;
        let (header, payload) = frame.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "spill file ended before its recorded frame count",
            )
        })?;
        self.remaining_bytes = self.remaining_bytes.saturating_sub(header.frame_len());
        self.remaining_frames -= 1;
        Ok(Some(payload))
    }

    /// Frames not yet read.
    pub fn remaining(&self) -> u64 {
        self.remaining_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The single spill file inside a manager's directory (tests corrupt it
    /// in place to exercise the untrusted-input paths).
    fn only_file(manager: &SpillManager) -> PathBuf {
        let mut entries: Vec<_> = fs::read_dir(manager.dir())
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(entries.len(), 1);
        entries.remove(0)
    }

    #[test]
    fn frames_round_trip_and_files_are_scoped() {
        let manager = SpillManager::new(None).unwrap();
        let dir = manager.dir().to_path_buf();
        let mut file = manager.create().unwrap();
        file.append(b"alpha").unwrap();
        file.append(b"").unwrap();
        file.append(b"gamma!").unwrap();
        let handle = file.finish().unwrap();
        assert_eq!(handle.frames(), 3);
        let mut reader = handle.open().unwrap();
        assert_eq!(reader.next_frame().unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(reader.next_frame().unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            reader.next_frame().unwrap().as_deref(),
            Some(&b"gamma!"[..])
        );
        assert_eq!(reader.next_frame().unwrap(), None);
        assert_eq!(manager.live_files().unwrap(), 1);
        drop(handle);
        assert_eq!(
            manager.live_files().unwrap(),
            0,
            "dropping the handle must delete its file"
        );
        drop(manager);
        assert!(
            !dir.exists(),
            "dropping the manager must remove the scoped directory"
        );
    }

    #[test]
    fn abandoned_write_side_deletes_its_partial_file() {
        let manager = SpillManager::new(None).unwrap();
        let mut file = manager.create().unwrap();
        file.append(b"partial").unwrap();
        assert_eq!(manager.live_files().unwrap(), 1);
        // Dropped without finish(): a spill aborted mid-write (error or
        // injected fault) must clean up immediately, not at directory
        // teardown.
        drop(file);
        assert_eq!(
            manager.live_files().unwrap(),
            0,
            "abandoning a write side must delete its partial file"
        );
    }

    #[test]
    fn truncated_file_errors_instead_of_over_allocating() {
        let manager = SpillManager::new(None).unwrap();
        let mut file = manager.create().unwrap();
        file.append(&vec![0xAB; 4096]).unwrap();
        let handle = file.finish().unwrap();
        // Truncate the file mid-payload behind the handle's back: the
        // header's length now exceeds the bytes remaining on disk.
        let path = only_file(&manager);
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(64).unwrap();
        drop(f);
        let err = handle.open().unwrap().next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_prefix_errors_instead_of_panicking() {
        let manager = SpillManager::new(None).unwrap();
        let mut file = manager.create().unwrap();
        file.append(b"real frame").unwrap();
        let handle = file.finish().unwrap();
        // Stomp the header with garbage: a u64-looking prefix of 0xFF… must
        // be rejected at the magic check, not fed to an allocator.
        let path = only_file(&manager);
        let mut bytes = fs::read(&path).unwrap();
        for b in bytes.iter_mut().take(16) {
            *b = 0xFF;
        }
        fs::write(&path, &bytes).unwrap();
        let err = handle.open().unwrap().next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let manager = SpillManager::new(None).unwrap();
        let mut file = manager.create().unwrap();
        file.append(b"checksummed payload").unwrap();
        let handle = file.finish().unwrap();
        let path = only_file(&manager);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = handle.open().unwrap().next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }
}
