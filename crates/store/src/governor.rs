//! The memory governor: per-worker reservation accounting against the
//! cluster's simulated `worker_memory` cap, with victim selection under
//! pressure.
//!
//! The engine charges partition `i` of a materialized collection to worker
//! `i % workers` (the same placement the FAIL simulation uses). With spilling
//! enabled, instead of aborting when a worker's resident bytes exceed the
//! cap, the governor picks victim partitions — largest first on each
//! overloaded worker — and the engine writes exactly those to disk.

/// Per-worker memory accounting for one cluster context.
#[derive(Debug, Clone)]
pub struct MemoryGovernor {
    limit: usize,
    reserved: Vec<usize>,
}

impl MemoryGovernor {
    /// A governor over `workers` workers, each capped at `limit` bytes.
    pub fn new(limit: usize, workers: usize) -> MemoryGovernor {
        MemoryGovernor {
            limit,
            reserved: vec![0; workers.max(1)],
        }
    }

    /// The per-worker cap in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.reserved.len()
    }

    /// Records `bytes` resident on the worker owning partition `part`.
    pub fn reserve(&mut self, part: usize, bytes: usize) {
        let w = part % self.reserved.len();
        self.reserved[w] += bytes;
    }

    /// Releases `bytes` from the worker owning partition `part` (a spill or a
    /// dropped intermediate).
    pub fn release(&mut self, part: usize, bytes: usize) {
        let w = part % self.reserved.len();
        self.reserved[w] = self.reserved[w].saturating_sub(bytes);
    }

    /// Bytes currently reserved on `worker`.
    pub fn used(&self, worker: usize) -> usize {
        self.reserved[worker % self.reserved.len()]
    }

    /// True when some worker is over its cap.
    pub fn over_limit(&self) -> bool {
        self.reserved.iter().any(|u| *u > self.limit)
    }

    /// The in-memory working-set budget one operator execution may assume
    /// before it must go out-of-core (Grace-style sub-partitioning). Half the
    /// worker cap: the other half is headroom for the operator's output.
    pub fn operator_budget(&self) -> usize {
        (self.limit / 2).max(1)
    }

    /// Victim selection for one freshly materialized collection:
    /// `sizes[i]` is the resident size of partition `i` (0 for partitions
    /// already on disk), charged to worker `i % workers`. Returns the
    /// partition indices to spill — largest first on each overloaded worker,
    /// until every worker fits under the cap — in ascending index order.
    pub fn plan_spills(&self, sizes: &[usize]) -> Vec<usize> {
        let workers = self.reserved.len();
        let mut victims: Vec<usize> = Vec::new();
        for w in 0..workers {
            let mut resident: Vec<usize> = (w..sizes.len()).step_by(workers).collect();
            let mut used: usize =
                self.reserved[w] + resident.iter().map(|i| sizes[*i]).sum::<usize>();
            // Largest partitions first: fewest spills to get under the cap.
            resident.sort_by_key(|i| std::cmp::Reverse(sizes[*i]));
            for i in resident {
                if used <= self.limit {
                    break;
                }
                if sizes[i] == 0 {
                    continue;
                }
                used -= sizes[i];
                victims.push(i);
            }
        }
        victims.sort_unstable();
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_largest_victims_per_overloaded_worker() {
        // 2 workers, cap 100. Worker 0 owns partitions 0 and 2 (60 + 70 =
        // 130): must spill the largest (70). Worker 1 owns 1 and 3 (40 + 50):
        // fits, spills nothing.
        let gov = MemoryGovernor::new(100, 2);
        assert_eq!(gov.plan_spills(&[60, 40, 70, 50]), vec![2]);
    }

    #[test]
    fn spills_everything_when_one_partition_alone_exceeds_the_cap() {
        let gov = MemoryGovernor::new(10, 1);
        assert_eq!(gov.plan_spills(&[25, 3]), vec![0]);
        assert_eq!(gov.plan_spills(&[25, 12]), vec![0, 1]);
    }

    #[test]
    fn reservations_count_against_the_cap() {
        let mut gov = MemoryGovernor::new(100, 1);
        gov.reserve(0, 80);
        assert_eq!(gov.used(0), 80);
        assert!(!gov.over_limit());
        // 80 reserved + 30 new > 100: the new partition must spill.
        assert_eq!(gov.plan_spills(&[30]), vec![0]);
        gov.release(0, 80);
        assert_eq!(gov.plan_spills(&[30]), Vec::<usize>::new());
    }
}
