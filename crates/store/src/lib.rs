//! # trance-store
//!
//! The out-of-core spill subsystem of **trance-rs**: the machinery that turns
//! the engine's simulated `MemoryExceeded` aborts into graceful spill events,
//! so memory-capped runs complete instead of reproducing only the paper's
//! FAIL cells.
//!
//! Three pieces:
//!
//! * **Spill files** ([`SpillFile`] / [`SpillHandle`] / [`SpillReader`]) —
//!   length-prefixed binary frames on disk. A frame is one encoded chunk
//!   (`trance-dist` encodes columnar `Batch` chunks and row-value chunks
//!   through the [`Spillable`] trait); the reader streams frames back one at
//!   a time, so a spilled partition is never materialized wholesale just to
//!   be scanned. Every handle deletes its file on drop, and every file lives
//!   inside a scoped [`SpillManager`] directory that is removed when the run's
//!   context goes away — spill data cannot outlive the run on either the
//!   success or the error path.
//! * **Codec** ([`ByteWriter`] / [`ByteReader`] plus [`encode_value`] /
//!   [`decode_value`]) — the compact little-endian wire format frames are
//!   written in. `trance_nrc::Value` round-trips losslessly (all nine
//!   variants, nested bags and tuples included); the columnar batch layout
//!   (schema header + typed column buffers + string dictionaries + null /
//!   absent bitmaps) is encoded by `trance-dist` on top of these primitives.
//! * **[`MemoryGovernor`]** — per-worker reservation accounting against the
//!   cluster's `worker_memory` cap. Under pressure it picks victim partitions
//!   (largest first on each overloaded worker) instead of failing; the engine
//!   spills exactly those victims.
//!
//! The crate deliberately depends only on `trance-nrc`: the engine
//! (`trance-dist`) builds its spill-aware operators — external Grace-style
//! hash joins, spilling shuffle writers, spilling grouping — on top of these
//! primitives, which keeps the dependency graph acyclic.

#![warn(missing_docs)]
// I/O paths must surface typed errors, never panic: a corrupt or truncated
// spill file is a recoverable fault, not a bug. Tests may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod codec;
pub mod file;
pub mod governor;
pub mod wire;

pub use codec::{decode_value, encode_value, ByteReader, ByteWriter, CodecError, Spillable};
pub use file::{SpillFile, SpillHandle, SpillManager, SpillReader};
pub use governor::MemoryGovernor;
pub use wire::{
    crc32, read_frame, write_frame, FrameHeader, DEFAULT_MAX_FRAME, HEADER_LEN, WIRE_MAGIC,
    WIRE_VERSION,
};
