//! The versioned frame format shared by spill files and the network shuffle
//! transport: a fixed 16-byte header (magic, version, frame kind, flags,
//! payload length, CRC-32) followed by the payload bytes.
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"TRNC"
//!      4     2  format version (little-endian u16, currently 1)
//!      6     1  frame kind (producer-defined: spill chunk, shuffle data,
//!               credit grant, control message, ...)
//!      7     1  flags (reserved, must be 0)
//!      8     4  payload length (little-endian u32)
//!     12     4  CRC-32 (IEEE) of the payload (little-endian u32)
//!     16     …  payload
//! ```
//!
//! The decoder treats every field as untrusted: the magic, version and flags
//! must match, the length must fit the caller's frame cap *and* the bytes
//! still available in the stream (when known), and the payload must match
//! its checksum. Violations surface as [`io::ErrorKind::InvalidData`] — a
//! corrupt or malicious frame is a recoverable protocol error, never a
//! panic. Payload buffers grow only as bytes actually arrive
//! (`Read::take` + `read_to_end`), so a forged length cannot balloon memory
//! beyond what the peer really sends.

use std::io::{self, Read, Write};

/// The leading frame magic.
pub const WIRE_MAGIC: [u8; 4] = *b"TRNC";

/// Current format version.
pub const WIRE_VERSION: u16 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 16;

/// Default per-frame payload cap for spill files: generous (one spilled
/// chunk) but finite, so a corrupt length prefix cannot ask for the moon.
pub const DEFAULT_MAX_FRAME: usize = 256 * 1024 * 1024;

/// Frame kind used by spill files.
pub const FRAME_SPILL: u8 = 0x01;

/// The decoded fixed header of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Producer-defined frame kind.
    pub kind: u8,
    /// Reserved; always 0 in version 1.
    pub flags: u8,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 (IEEE) of the payload.
    pub crc: u32,
}

impl FrameHeader {
    /// Total encoded size of the frame (header + payload).
    pub fn frame_len(&self) -> u64 {
        HEADER_LEN as u64 + u64::from(self.len)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. `std` ships no
/// checksum and the workspace takes no external crates, so the table is
/// built once at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Encodes the 16-byte header for a frame of `kind` carrying `payload`.
/// Fails when the payload exceeds the format's `u32` length field.
pub fn encode_header(kind: u8, payload: &[u8]) -> io::Result<[u8; HEADER_LEN]> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        invalid(format!(
            "frame payload of {} bytes exceeds u32",
            payload.len()
        ))
    })?;
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&WIRE_MAGIC);
    header[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    header[6] = kind;
    header[7] = 0;
    header[8..12].copy_from_slice(&len.to_le_bytes());
    header[12..16].copy_from_slice(&crc32(payload).to_le_bytes());
    Ok(header)
}

/// Writes one frame (header + payload), returning the total bytes written.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<u64> {
    let header = encode_header(kind, payload)?;
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(HEADER_LEN as u64 + payload.len() as u64)
}

/// Parses and validates a frame header against the caller's payload cap and
/// (when known) the bytes still available in the stream.
pub fn decode_header(
    bytes: &[u8; HEADER_LEN],
    max_len: usize,
    stream_remaining: Option<u64>,
) -> io::Result<FrameHeader> {
    if bytes[0..4] != WIRE_MAGIC {
        return Err(invalid("bad frame magic"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != WIRE_VERSION {
        return Err(invalid(format!(
            "unsupported frame version {version} (expected {WIRE_VERSION})"
        )));
    }
    let kind = bytes[6];
    let flags = bytes[7];
    if flags != 0 {
        return Err(invalid(format!("unknown frame flags {flags:#04x}")));
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if len as usize > max_len {
        return Err(invalid(format!(
            "frame payload of {len} bytes exceeds the {max_len}-byte cap"
        )));
    }
    let header = FrameHeader {
        kind,
        flags,
        len,
        crc,
    };
    if let Some(remaining) = stream_remaining {
        if header.frame_len() > remaining {
            return Err(invalid(format!(
                "frame claims {} payload bytes but only {} bytes remain in the stream",
                len,
                remaining.saturating_sub(HEADER_LEN as u64)
            )));
        }
    }
    Ok(header)
}

/// Reads the next frame from `r`.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary); anything else that prevents a full, checksum-valid frame —
/// bad magic or version, a length beyond `max_len` or beyond
/// `stream_remaining`, a short payload, a CRC mismatch — is an
/// [`io::ErrorKind::InvalidData`] error.
pub fn read_frame(
    r: &mut impl Read,
    max_len: usize,
    stream_remaining: Option<u64>,
) -> io::Result<Option<(FrameHeader, Vec<u8>)>> {
    let mut header_bytes = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(invalid("truncated frame header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let header = decode_header(&header_bytes, max_len, stream_remaining)?;
    // Grow the buffer only as bytes actually arrive: a forged length cannot
    // reserve more memory than the peer really transmits.
    let mut payload = Vec::new();
    let got = r
        .by_ref()
        .take(u64::from(header.len))
        .read_to_end(&mut payload)?;
    if got as u64 != u64::from(header.len) {
        return Err(invalid(format!(
            "truncated frame payload: expected {} bytes, got {got}",
            header.len
        )));
    }
    if crc32(&payload) != header.crc {
        return Err(invalid("frame checksum mismatch"));
    }
    Ok(Some((header, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").unwrap();
        write_frame(&mut buf, 9, b"").unwrap();
        let total = buf.len() as u64;
        let mut cur = Cursor::new(&buf);
        let (h1, p1) = read_frame(&mut cur, 1024, Some(total)).unwrap().unwrap();
        assert_eq!((h1.kind, p1.as_slice()), (7, &b"hello"[..]));
        let (h2, p2) = read_frame(&mut cur, 1024, Some(total - h1.frame_len()))
            .unwrap()
            .unwrap();
        assert_eq!((h2.kind, p2.as_slice()), (9, &b""[..]));
        assert!(read_frame(&mut cur, 1024, Some(0)).unwrap().is_none());
    }

    #[test]
    fn bad_magic_version_flags_and_cap_are_invalid_data() {
        let mut good = Vec::new();
        write_frame(&mut good, 1, b"payload").unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        let mut bad_flags = good.clone();
        bad_flags[7] = 1;
        for bytes in [&bad_magic, &bad_version, &bad_flags] {
            let err = read_frame(&mut Cursor::new(bytes), 1024, None).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
        // Cap: the same valid frame, read under a smaller payload cap.
        let err = read_frame(&mut Cursor::new(&good), 3, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_and_header_are_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"some payload").unwrap();
        // Cut into the payload.
        let cut = &buf[..buf.len() - 4];
        let err = read_frame(&mut Cursor::new(cut), 1024, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Cut into the header.
        let cut = &buf[..HEADER_LEN - 3];
        let err = read_frame(&mut Cursor::new(cut), 1024, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn length_is_validated_against_stream_remaining() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, &[0u8; 64]).unwrap();
        // The stream claims to hold fewer bytes than the frame needs: the
        // header alone must be rejected, before any payload allocation.
        let err = read_frame(&mut Cursor::new(&buf), 1024, Some(32)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn checksum_mismatch_is_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"checksummed").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40; // flip one payload bit
        let err = read_frame(&mut Cursor::new(&buf), 1024, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }
}
