//! Seeded TPC-H-like data generator with controllable skew.
//!
//! The paper uses the skewed TPC-H generator of [43] at scale factor 100 with
//! Zipfian skew factors 0–4 (0 = uniform, 4 = a few keys at very high
//! frequency). This generator reproduces the same knobs at laptop scale: the
//! foreign keys of Orders and Lineitem are drawn from a Zipf-like distribution
//! whose exponent is the skew factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trance_nrc::{Bag, Value};

/// Skew factor 0–4, as in the paper's Figure 8.
pub type SkewFactor = u32;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Scale knob: the number of rows of every table is proportional to it.
    /// Scale 1.0 produces 6 000 lineitems, 1 500 orders, 150 customers,
    /// 200 parts, 25 nations, 5 regions (the TPC-H ratios).
    pub scale: f64,
    /// Zipf-like skew factor (0 = uniform, 4 = extreme skew).
    pub skew: SkewFactor,
    /// RNG seed; identical configurations generate identical data.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 1.0,
            skew: 0,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// Creates a configuration with the given scale and skew.
    pub fn new(scale: f64, skew: SkewFactor) -> Self {
        TpchConfig {
            scale,
            skew,
            ..TpchConfig::default()
        }
    }

    /// Number of lineitem rows.
    pub fn lineitems(&self) -> usize {
        (6000.0 * self.scale).max(1.0) as usize
    }
    /// Number of order rows.
    pub fn orders(&self) -> usize {
        (1500.0 * self.scale).max(1.0) as usize
    }
    /// Number of customer rows.
    pub fn customers(&self) -> usize {
        (150.0 * self.scale).max(1.0) as usize
    }
    /// Number of part rows.
    pub fn parts(&self) -> usize {
        (200.0 * self.scale).max(1.0) as usize
    }
    /// Number of nations.
    pub fn nations(&self) -> usize {
        25
    }
    /// Number of regions.
    pub fn regions(&self) -> usize {
        5
    }
}

/// The generated tables, each a flat bag of tuples.
#[derive(Debug, Clone)]
pub struct TpchData {
    /// Lineitem: `l_orderkey, l_partkey, l_quantity, l_price, l_comment`.
    pub lineitem: Bag,
    /// Orders: `o_orderkey, o_custkey, o_orderdate, o_comment`.
    pub orders: Bag,
    /// Customer: `c_custkey, c_name, c_nationkey, c_comment`.
    pub customer: Bag,
    /// Nation: `n_nationkey, n_name, n_regionkey`.
    pub nation: Bag,
    /// Region: `r_regionkey, r_name`.
    pub region: Bag,
    /// Part: `p_partkey, p_name, p_retailprice, p_comment`.
    pub part: Bag,
}

/// Draws a key in `0..n` from a Zipf-like distribution with exponent `skew`
/// (0 = uniform). Uses inverse-power sampling, which is accurate enough for
/// benchmarking purposes and much cheaper than building a full CDF.
fn zipf_key(rng: &mut StdRng, n: usize, skew: SkewFactor) -> i64 {
    if n <= 1 {
        return 0;
    }
    if skew == 0 {
        return rng.gen_range(0..n) as i64;
    }
    // Like the skewed TPC-H generator, skew is produced by duplicating a small
    // set of heavy key values: the share of rows carrying a heavy key grows
    // with the skew factor, while the remaining rows stay uniform.
    let heavy_share = match skew {
        1 => 0.30,
        2 => 0.50,
        3 => 0.70,
        _ => 0.85,
    };
    let heavy_keys = 5.min(n);
    if rng.gen_bool(heavy_share) {
        rng.gen_range(0..heavy_keys) as i64
    } else {
        rng.gen_range(0..n) as i64
    }
}

/// Generates the tables for `config`.
pub fn generate(config: &TpchConfig) -> TpchData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_li = config.lineitems();
    let n_ord = config.orders();
    let n_cust = config.customers();
    let n_part = config.parts();
    let n_nat = config.nations();
    let n_reg = config.regions();

    let region = Bag::new(
        (0..n_reg)
            .map(|r| {
                Value::tuple([
                    ("r_regionkey", Value::Int(r as i64)),
                    ("r_name", Value::str(format!("region-{r}"))),
                ])
            })
            .collect(),
    );
    let nation = Bag::new(
        (0..n_nat)
            .map(|n| {
                Value::tuple([
                    ("n_nationkey", Value::Int(n as i64)),
                    ("n_name", Value::str(format!("nation-{n}"))),
                    ("n_regionkey", Value::Int((n % n_reg) as i64)),
                ])
            })
            .collect(),
    );
    let customer = Bag::new(
        (0..n_cust)
            .map(|c| {
                Value::tuple([
                    ("c_custkey", Value::Int(c as i64)),
                    ("c_name", Value::str(format!("customer-{c}"))),
                    ("c_nationkey", Value::Int((c % n_nat) as i64)),
                    (
                        "c_comment",
                        Value::str(format!("customer comment {c} lorem ipsum")),
                    ),
                ])
            })
            .collect(),
    );
    let part = Bag::new(
        (0..n_part)
            .map(|p| {
                Value::tuple([
                    ("p_partkey", Value::Int(p as i64)),
                    ("p_name", Value::str(format!("part-{p}"))),
                    ("p_retailprice", Value::Real(1.0 + (p % 100) as f64 / 10.0)),
                    ("p_comment", Value::str(format!("part comment {p}"))),
                ])
            })
            .collect(),
    );
    let orders = Bag::new(
        (0..n_ord)
            .map(|o| {
                Value::tuple([
                    ("o_orderkey", Value::Int(o as i64)),
                    (
                        "o_custkey",
                        Value::Int(zipf_key(&mut rng, n_cust, config.skew)),
                    ),
                    ("o_orderdate", Value::Date(10_000 + (o % 2500) as i64)),
                    (
                        "o_comment",
                        Value::str(format!("order comment {o} lorem ipsum dolor")),
                    ),
                ])
            })
            .collect(),
    );
    let lineitem = Bag::new(
        (0..n_li)
            .map(|l| {
                Value::tuple([
                    (
                        "l_orderkey",
                        Value::Int(zipf_key(&mut rng, n_ord, config.skew)),
                    ),
                    (
                        "l_partkey",
                        Value::Int(zipf_key(&mut rng, n_part, config.skew)),
                    ),
                    ("l_quantity", Value::Real(1.0 + (l % 50) as f64)),
                    ("l_price", Value::Real(0.9 + (l % 1000) as f64 / 100.0)),
                    (
                        "l_comment",
                        Value::str(format!("lineitem comment {l} lorem ipsum dolor sit")),
                    ),
                ])
            })
            .collect(),
    );
    TpchData {
        lineitem,
        orders,
        customer,
        nation,
        region,
        part,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let cfg = TpchConfig::new(0.5, 0);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.lineitem.len(), cfg.lineitems());
        assert_eq!(a.orders.len(), cfg.orders());
        assert!(a.lineitem.multiset_eq(&b.lineitem));
    }

    #[test]
    fn skew_concentrates_foreign_keys() {
        let count_top_key = |skew: u32| {
            let data = generate(&TpchConfig::new(0.5, skew));
            let mut counts = std::collections::HashMap::new();
            for r in data.lineitem.iter() {
                let k = r.as_tuple().unwrap().get("l_orderkey").unwrap().clone();
                *counts.entry(k).or_insert(0usize) += 1;
            }
            *counts.values().max().unwrap()
        };
        let uniform = count_top_key(0);
        let skewed = count_top_key(4);
        assert!(
            skewed > uniform * 5,
            "skew factor 4 must concentrate keys (uniform max {uniform}, skewed max {skewed})"
        );
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let data = generate(&TpchConfig::new(0.2, 2));
        let n_ord = TpchConfig::new(0.2, 2).orders() as i64;
        for r in data.lineitem.iter() {
            let k = r
                .as_tuple()
                .unwrap()
                .get("l_orderkey")
                .unwrap()
                .as_int()
                .unwrap();
            assert!(k >= 0 && k < n_ord);
        }
    }
}
