//! # trance-tpch
//!
//! The TPC-H micro-benchmark of Section 6: a seeded, optionally skewed data
//! generator for the tables used by the benchmark (Lineitem, Orders,
//! Customer, Nation, Region, Part) and the three query families —
//! flat-to-nested, nested-to-nested, nested-to-flat — at nesting depths 0–4
//! in narrow and wide variants.
//!
//! The hierarchy follows the paper: level 0 is Lineitem, successive levels
//! group across Orders, Customer, Nation and Region, so the number of
//! top-level tuples shrinks as depth grows.

#![warn(missing_docs)]

pub mod generator;
pub mod queries;

pub use generator::{generate, SkewFactor, TpchConfig, TpchData};
pub use queries::{
    flat_to_nested, nested_to_flat, nested_to_nested, nesting_structure_for_depth, QueryVariant,
};
