//! The TPC-H benchmark query suite (Section 6).
//!
//! Three families, each at nesting depths 0–4 and in a narrow (projected) and
//! wide (all attributes) variant:
//!
//! * **flat-to-nested** — group the flat tables into a hierarchy whose top
//!   level is the table at the requested depth (Lineitem, Orders, Customer,
//!   Nation, Region);
//! * **nested-to-nested** — take the materialized flat-to-nested result as
//!   input (relation `Nested`), join `Part` at the lowest level and aggregate
//!   the amount spent per part name, preserving the hierarchy;
//! * **nested-to-flat** — same navigation, but aggregate at the top level per
//!   top-level name, returning a flat collection.

use trance_nrc::builder::*;
use trance_nrc::Expr;
use trance_shred::NestingStructure;

/// Narrow (single attribute per level) or wide (all attributes) variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryVariant {
    /// Keep one descriptive attribute per level.
    Narrow,
    /// Keep every attribute of every level.
    Wide,
}

/// The nested-input relation name used by the nested-to-* query families.
pub const NESTED_INPUT: &str = "Nested";

/// Hierarchy tables from level 0 (leaf) to level 4 (outermost).
const LEVEL_TABLE: [&str; 5] = ["Lineitem", "Orders", "Customer", "Nation", "Region"];
/// Loop variable used per level.
const LEVEL_VAR: [&str; 5] = ["l", "o", "c", "n", "r"];
/// Name of the nested attribute holding level `k-1` inside level `k`.
const NEST_ATTR: [&str; 5] = ["", "lineitems", "orders", "customers", "nations"];
/// (child key, parent key) joining level `k-1`'s table to level `k`'s table.
const JOIN_KEY: [(&str, &str); 5] = [
    ("", ""),
    ("l_orderkey", "o_orderkey"),
    ("o_custkey", "c_custkey"),
    ("c_nationkey", "n_nationkey"),
    ("n_regionkey", "r_regionkey"),
];

/// Scalar attributes kept at a level by the flat-to-nested queries.
fn kept_attrs(level: usize, variant: QueryVariant) -> Vec<&'static str> {
    match (level, variant) {
        (0, QueryVariant::Narrow) => vec!["l_partkey", "l_quantity"],
        (0, QueryVariant::Wide) => vec![
            "l_orderkey",
            "l_partkey",
            "l_quantity",
            "l_price",
            "l_comment",
        ],
        (1, QueryVariant::Narrow) => vec!["o_orderdate"],
        (1, QueryVariant::Wide) => vec!["o_orderkey", "o_custkey", "o_orderdate", "o_comment"],
        (2, QueryVariant::Narrow) => vec!["c_name"],
        (2, QueryVariant::Wide) => vec!["c_custkey", "c_name", "c_nationkey", "c_comment"],
        (3, QueryVariant::Narrow) => vec!["n_name"],
        (3, QueryVariant::Wide) => vec!["n_nationkey", "n_name", "n_regionkey"],
        (4, QueryVariant::Narrow) => vec!["r_name"],
        (4, QueryVariant::Wide) => vec!["r_regionkey", "r_name"],
        _ => vec![],
    }
}

/// The descriptive attribute of a level (used as the grouping key of the
/// nested-to-flat queries).
fn level_name_attr(level: usize) -> &'static str {
    match level {
        0 => "l_partkey",
        1 => "o_orderdate",
        2 => "c_name",
        3 => "n_name",
        _ => "r_name",
    }
}

/// The nesting structure of the flat-to-nested output at `depth` (and hence of
/// the nested input of the nested-to-* families).
pub fn nesting_structure_for_depth(depth: usize) -> NestingStructure {
    let mut s = NestingStructure::flat();
    for attr in &NEST_ATTR[1..=depth] {
        s = NestingStructure::flat().with_child(*attr, s);
        // NEST_ATTR indexed by the *parent* level that contains it; rebuild
        // outermost-last, so iterate from the leaf upwards.
    }
    // The loop above builds inside-out: level 1 wraps the leaf, level 2 wraps
    // level 1, etc. Since we started from the leaf and wrapped repeatedly, the
    // final value corresponds to the outermost level.
    s
}

/// Builds the flat-to-nested query of the given depth and variant.
///
/// Depth 0 is a plain projection of Lineitem; depth `d > 0` produces a
/// hierarchy with the table of level `d` at the top.
pub fn flat_to_nested(depth: usize, variant: QueryVariant) -> Expr {
    assert!(depth <= 4, "the benchmark defines depths 0..=4");
    build_level(depth, variant)
}

/// Recursively builds the flat-to-nested construction for `level`.
fn build_level(level: usize, variant: QueryVariant) -> Expr {
    let v = LEVEL_VAR[level];
    let table = LEVEL_TABLE[level];
    let mut fields: Vec<(String, Expr)> = kept_attrs(level, variant)
        .into_iter()
        .map(|a| (a.to_string(), proj(var(v), a)))
        .collect();
    if level > 0 {
        let (child_key, parent_key) = JOIN_KEY[level];
        let child_var = LEVEL_VAR[level - 1];
        let child = build_level(level - 1, variant);
        // Correlate the child construction with this level's key.
        let correlated = match child {
            Expr::For {
                var: cv,
                source,
                body,
            } => Expr::For {
                var: cv,
                source,
                body: Box::new(Expr::If {
                    cond: Box::new(cmp_eq(
                        proj(var(child_var), child_key),
                        proj(var(v), parent_key),
                    )),
                    then_branch: body,
                    else_branch: None,
                }),
            },
            other => other,
        };
        fields.push((NEST_ATTR[level].to_string(), correlated));
    }
    forin(v, var(table), singleton(Expr::Tuple(fields)))
}

/// Builds the nested-to-nested query of the given depth and variant over the
/// materialized flat-to-nested output (input relation [`NESTED_INPUT`]) and
/// `Part`.
pub fn nested_to_nested(depth: usize, variant: QueryVariant) -> Expr {
    assert!(depth <= 4);
    if depth == 0 {
        return lowest_level_aggregate(var(NESTED_INPUT), "x0");
    }
    rebuild_level(depth, depth, variant, NESTED_INPUT)
}

fn level_var_n(level: usize) -> String {
    format!("x{level}")
}

/// Rebuilds the hierarchy from the nested input, replacing the leaf bag with
/// the Part join + aggregation.
fn rebuild_level(level: usize, depth: usize, variant: QueryVariant, source: &str) -> Expr {
    let v = level_var_n(level);
    let src: Expr = if level == depth {
        var(source)
    } else {
        proj(var(level_var_n(level + 1)), NEST_ATTR[level + 1])
    };
    let mut fields: Vec<(String, Expr)> = kept_attrs(level, variant)
        .into_iter()
        .map(|a| (a.to_string(), proj(var(v.clone()), a)))
        .collect();
    let child = if level == 1 {
        // The leaf bag: join lineitems with Part and aggregate per part name.
        lowest_level_aggregate(proj(var(v.clone()), NEST_ATTR[1]), "li")
    } else {
        rebuild_level(level - 1, depth, variant, source)
    };
    fields.push((NEST_ATTR[level].to_string(), child));
    forin(v, src, singleton(Expr::Tuple(fields)))
}

/// `sumBy^{total}_{p_name}` of a lineitem bag joined with Part.
fn lowest_level_aggregate(lineitems: Expr, lvar: &str) -> Expr {
    sum_by(
        forin(
            lvar,
            lineitems,
            forin(
                "p",
                var("Part"),
                ifthen(
                    cmp_eq(proj(var(lvar), "l_partkey"), proj(var("p"), "p_partkey")),
                    singleton(tuple([
                        ("p_name", proj(var("p"), "p_name")),
                        (
                            "total",
                            mul(
                                proj(var(lvar), "l_quantity"),
                                proj(var("p"), "p_retailprice"),
                            ),
                        ),
                    ])),
                ),
            ),
        ),
        &["p_name"],
        &["total"],
    )
}

/// Builds the nested-to-flat query of the given depth: navigate every level of
/// the nested input, join `Part` at the bottom, and aggregate the total amount
/// per top-level name attribute.
pub fn nested_to_flat(depth: usize, _variant: QueryVariant) -> Expr {
    assert!(depth <= 4);
    let name_attr = level_name_attr(depth);
    if depth == 0 {
        // Flat input: aggregate per part name directly.
        return sum_by(
            forin(
                "l",
                var(NESTED_INPUT),
                forin(
                    "p",
                    var("Part"),
                    ifthen(
                        cmp_eq(proj(var("l"), "l_partkey"), proj(var("p"), "p_partkey")),
                        singleton(tuple([
                            ("name", proj(var("p"), "p_name")),
                            (
                                "total",
                                mul(
                                    proj(var("l"), "l_quantity"),
                                    proj(var("p"), "p_retailprice"),
                                ),
                            ),
                        ])),
                    ),
                ),
            ),
            &["name"],
            &["total"],
        );
    }
    // Navigate from the top level down to the lineitems, then join Part.
    let mut body = forin(
        "li",
        proj(var(level_var_n(1)), NEST_ATTR[1]),
        forin(
            "p",
            var("Part"),
            ifthen(
                cmp_eq(proj(var("li"), "l_partkey"), proj(var("p"), "p_partkey")),
                singleton(tuple([
                    ("name", proj(var(level_var_n(depth)), name_attr)),
                    (
                        "total",
                        mul(
                            proj(var("li"), "l_quantity"),
                            proj(var("p"), "p_retailprice"),
                        ),
                    ),
                ])),
            ),
        ),
    );
    // Wrap the navigation loops from level 1 up to the top level.
    for level in 1..=depth {
        let v = level_var_n(level);
        let src = if level == depth {
            var(NESTED_INPUT)
        } else {
            proj(var(level_var_n(level + 1)), NEST_ATTR[level + 1])
        };
        body = forin(v, src, body);
    }
    sum_by(body, &["name"], &["total"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TpchConfig};
    use trance_nrc::{eval, Env, Value};

    fn env(scale: f64) -> Env {
        let d = generate(&TpchConfig::new(scale, 0));
        Env::from_bindings([
            ("Lineitem", Value::Bag(d.lineitem)),
            ("Orders", Value::Bag(d.orders)),
            ("Customer", Value::Bag(d.customer)),
            ("Nation", Value::Bag(d.nation)),
            ("Region", Value::Bag(d.region)),
            ("Part", Value::Bag(d.part)),
        ])
    }

    #[test]
    fn flat_to_nested_produces_expected_hierarchy() {
        let env = env(0.05);
        for depth in 0..=4usize {
            let q = flat_to_nested(depth, QueryVariant::Narrow);
            let out = eval(&q, &env).unwrap().into_bag().unwrap();
            assert!(!out.is_empty(), "depth {depth} output must not be empty");
            // Walk one row down the hierarchy to confirm nesting depth.
            let mut row = out.items()[0].clone();
            for level in (1..=depth).rev() {
                let bag = row
                    .as_tuple()
                    .unwrap()
                    .get(NEST_ATTR[level])
                    .unwrap_or_else(|| panic!("missing {} at depth {depth}", NEST_ATTR[level]))
                    .clone();
                let bag = bag.as_bag().unwrap().clone();
                if bag.is_empty() {
                    break;
                }
                row = bag.items()[0].clone();
            }
        }
    }

    #[test]
    fn nested_families_evaluate_on_materialized_input() {
        let base_env = env(0.05);
        for depth in 0..=2usize {
            let nested_input =
                eval(&flat_to_nested(depth, QueryVariant::Narrow), &base_env).unwrap();
            let mut e2 = base_env.clone();
            e2.bind(NESTED_INPUT, nested_input);
            let nn = eval(&nested_to_nested(depth, QueryVariant::Narrow), &e2).unwrap();
            assert!(!nn.as_bag().unwrap().is_empty());
            let nf = eval(&nested_to_flat(depth, QueryVariant::Narrow), &e2).unwrap();
            let flat = nf.as_bag().unwrap();
            assert!(!flat.is_empty());
            // Flat output rows carry exactly name + total.
            let first = flat.items()[0].as_tuple().unwrap();
            assert!(first.get("name").is_some() && first.get("total").is_some());
        }
    }

    #[test]
    fn nesting_structure_matches_depth() {
        assert!(nesting_structure_for_depth(0).children.is_empty());
        let s2 = nesting_structure_for_depth(2);
        assert!(s2.children.contains_key("orders"));
        assert!(s2.children["orders"].children.contains_key("lineitems"));
        let s4 = nesting_structure_for_depth(4);
        assert_eq!(s4.paths().len(), 4);
    }
}
