//! Biomedical end-to-end pipeline (Figure 9): run the five-step driver-gene
//! scoring pipeline over the synthetic ICGC-shaped datasets under the
//! shredded and standard strategies.
//!
//! Run with `cargo run --release --example biomedical_pipeline`.

use trance::biomed::BiomedConfig;
use trance::compiler::Strategy;
use trance_bench::run_biomed_pipeline;

fn main() {
    let cfg = BiomedConfig::small();
    for strategy in [Strategy::Shred, Strategy::Standard] {
        let row = run_biomed_pipeline(&cfg, strategy, 0.0);
        println!("== {} ==", strategy.label());
        for (step, d) in &row.steps {
            match d {
                Some(d) => println!("  {step}: {:.1} ms", d.as_secs_f64() * 1000.0),
                None => println!("  {step}: FAIL"),
            }
        }
        println!(
            "  total: {:.1} ms, shuffled {:.2} MiB\n",
            row.total().as_secs_f64() * 1000.0,
            row.shuffled_bytes as f64 / (1024.0 * 1024.0)
        );
    }
}
