//! Plan-language tour: build the running example's standard plan (Figure 3)
//! with the algebra API, run the optimizer (column pruning, selection and
//! aggregation pushdown), and print both trees.
//!
//! Run with `cargo run --example plan_optimizer_tour`.

use trance::algebra::{optimize_default, pretty_plan, AttrSchema, Catalog, Plan, PlanJoinKind};

fn main() {
    let mut catalog = Catalog::new();
    catalog.register(
        "COP",
        AttrSchema::flat(["cname"]).with_nested(
            "corders",
            AttrSchema::flat(["odate"]).with_nested("oparts", AttrSchema::flat(["pid", "qty"])),
        ),
    );
    catalog.register(
        "Part",
        AttrSchema::flat(["pid", "pname", "price", "comment", "brand"]),
    );

    let plan = Plan::scan("COP")
        .outer_unnest("corders", "copID")
        .outer_unnest("oparts", "coID")
        .join(
            Plan::scan("Part"),
            &["pid"],
            &["pid"],
            PlanJoinKind::LeftOuter,
        )
        .nest_sum(&["copID", "coID", "cname", "odate", "pname"], &["total"])
        .nest_bag(
            &["copID", "coID", "cname", "odate"],
            &["pname", "total"],
            "oparts",
        )
        .nest_bag(&["copID", "cname"], &["odate", "oparts"], "corders")
        .project_columns(&["cname", "corders"]);

    println!("=== Figure 3 plan (as written) ===\n{}", pretty_plan(&plan));
    let optimized = optimize_default(&plan, &catalog);
    println!("=== After optimization ===\n{}", pretty_plan(&optimized));
}
