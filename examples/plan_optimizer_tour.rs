//! Plan-layer tour: lower the running example's NRC query through the
//! unnesting algorithm (Figure 3), run the optimizer (column pruning,
//! selection pushdown, join strategy selection) and print the trees —
//! the same pipeline every strategy executes.
//!
//! Run with `cargo run --example plan_optimizer_tour`.

use trance::algebra::{lower, optimize, pretty_plan, AttrSchema, Catalog, OptimizerConfig};
use trance::nrc::builder::*;

fn main() {
    let mut catalog = Catalog::new();
    catalog.register(
        "COP",
        AttrSchema::flat(["cname", "ccomment"]).with_nested(
            "corders",
            AttrSchema::flat(["odate"]).with_nested("oparts", AttrSchema::flat(["pid", "qty"])),
        ),
    );
    catalog.register(
        "Part",
        AttrSchema::flat(["pid", "pname", "price", "comment", "brand"]),
    );
    // Catalog sizes drive join strategy selection: Part fits under the
    // broadcast limit, so the value join is annotated `[broadcast]`.
    catalog.set_size("COP", 4 * 1024 * 1024);
    catalog.set_size("Part", 2 * 1024);

    // The running example: for each customer, per order, the total spent per
    // part name (a two-level nested output with a join at the bottom).
    let query = forin(
        "cop",
        var("COP"),
        singleton(tuple([
            ("cname", proj(var("cop"), "cname")),
            (
                "corders",
                forin(
                    "co",
                    proj(var("cop"), "corders"),
                    singleton(tuple([
                        ("odate", proj(var("co"), "odate")),
                        (
                            "oparts",
                            sum_by(
                                forin(
                                    "op",
                                    proj(var("co"), "oparts"),
                                    forin(
                                        "p",
                                        var("Part"),
                                        ifthen(
                                            cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                                            singleton(tuple([
                                                ("pname", proj(var("p"), "pname")),
                                                (
                                                    "total",
                                                    mul(
                                                        proj(var("op"), "qty"),
                                                        proj(var("p"), "price"),
                                                    ),
                                                ),
                                            ])),
                                        ),
                                    ),
                                ),
                                &["pname"],
                                &["total"],
                            ),
                        ),
                    ])),
                ),
            ),
        ])),
    );

    let program = lower(&query, &catalog).expect("the running example lowers");
    println!("=== Lowered plan program (Figure 3 shape) ===\n");
    for assignment in &program.assignments {
        println!(
            "-- {} --\n{}",
            assignment.name,
            pretty_plan(&assignment.plan)
        );
    }
    println!("-- root --\n{}", pretty_plan(&program.root));

    let config = OptimizerConfig {
        broadcast_limit: Some(8 * 1024),
        ..OptimizerConfig::default()
    };
    println!("=== After optimization ===\n");
    for assignment in &program.assignments {
        println!(
            "-- {} --\n{}",
            assignment.name,
            pretty_plan(&optimize(&assignment.plan, &catalog, &config))
        );
    }
    println!(
        "-- root --\n{}",
        pretty_plan(&optimize(&program.root, &catalog, &config))
    );
}
