//! Quickstart: write the paper's running example in NRC, run it on the
//! simulated cluster with both compilation routes, and compare them.
//!
//! Run with `cargo run --example quickstart`.

use trance::compiler::{collect_unshredded, run_query, InputSet, QuerySpec, RunResult, Strategy};
use trance::dist::{ClusterConfig, DistContext};
use trance::nrc::builder::*;
use trance::nrc::Value;
use trance::shred::{NestingStructure, ShreddedInputDecl};

fn main() {
    // A tiny COP instance: customers -> orders -> purchased parts.
    let cop = Value::bag(vec![Value::tuple([
        ("cname", Value::str("alice")),
        (
            "corders",
            Value::bag(vec![Value::tuple([
                ("odate", Value::Date(100)),
                (
                    "oparts",
                    Value::bag(vec![
                        Value::tuple([("pid", Value::Int(1)), ("qty", Value::Real(3.0))]),
                        Value::tuple([("pid", Value::Int(2)), ("qty", Value::Real(2.0))]),
                    ]),
                ),
            ])]),
        ),
    ])]);
    let part = Value::bag(vec![
        Value::tuple([
            ("pid", Value::Int(1)),
            ("pname", Value::str("bolt")),
            ("price", Value::Real(2.0)),
        ]),
        Value::tuple([
            ("pid", Value::Int(2)),
            ("pname", Value::str("nut")),
            ("price", Value::Real(0.5)),
        ]),
    ]);

    // Example 1 of the paper: per customer and order, total spent per part name.
    let query = forin(
        "cop",
        var("COP"),
        singleton(tuple([
            ("cname", proj(var("cop"), "cname")),
            (
                "corders",
                forin(
                    "co",
                    proj(var("cop"), "corders"),
                    singleton(tuple([
                        ("odate", proj(var("co"), "odate")),
                        (
                            "oparts",
                            sum_by(
                                forin(
                                    "op",
                                    proj(var("co"), "oparts"),
                                    forin(
                                        "p",
                                        var("Part"),
                                        ifthen(
                                            cmp_eq(proj(var("op"), "pid"), proj(var("p"), "pid")),
                                            singleton(tuple([
                                                ("pname", proj(var("p"), "pname")),
                                                (
                                                    "total",
                                                    mul(
                                                        proj(var("op"), "qty"),
                                                        proj(var("p"), "price"),
                                                    ),
                                                ),
                                            ])),
                                        ),
                                    ),
                                ),
                                &["pname"],
                                &["total"],
                            ),
                        ),
                    ])),
                ),
            ),
        ])),
    );

    let structure = NestingStructure::flat().with_child(
        "corders",
        NestingStructure::flat().with_child("oparts", NestingStructure::flat()),
    );
    let spec = QuerySpec::new(
        "running-example",
        query,
        vec![ShreddedInputDecl::new("COP", structure)],
    );

    let ctx = DistContext::new(ClusterConfig::new(4, 8));
    let mut inputs = InputSet::new(ctx);
    inputs
        .add_nested("COP", cop.as_bag().unwrap().clone())
        .unwrap();
    inputs
        .add_flat("Part", part.as_bag().unwrap().clone())
        .unwrap();

    for strategy in [Strategy::Standard, Strategy::Shred, Strategy::ShredUnshred] {
        let outcome = run_query(&spec, &inputs, strategy);
        println!(
            "--- {} ({:.2} ms, {} tuples shuffled) ---",
            strategy.label(),
            outcome.seconds() * 1000.0,
            outcome.stats.shuffled_tuples
        );
        match outcome.result {
            RunResult::Nested(d) => println!("{}", d.collect_bag()),
            RunResult::Shredded(out) => {
                println!("top bag: {}", out.top.collect_bag());
                for (path, dict) in &out.dicts {
                    println!("dictionary {path}: {}", dict.collect_bag());
                }
                println!("unshredded: {}", collect_unshredded(&out).unwrap());
            }
            RunResult::Failed(e) => println!("FAILED: {e}"),
        }
    }
}
