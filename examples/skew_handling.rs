//! Skew handling: generate increasingly skewed TPC-H data and compare the
//! skew-aware shredded pipeline against the skew-unaware one (a slice of
//! Figure 8), reporting shuffle volumes.
//!
//! Run with `cargo run --release --example skew_handling`.

use trance::compiler::Strategy;
use trance::tpch::{QueryVariant, TpchConfig};
use trance_bench::{run_tpch_query, Family};

fn main() {
    println!("Nested-to-nested narrow, depth 2, skew factors 0-4 (scale 0.2)\n");
    for skew in 0..=4u32 {
        let cfg = TpchConfig::new(0.2, skew);
        let rows = run_tpch_query(
            &cfg,
            Family::NestedToNested,
            2,
            QueryVariant::Narrow,
            &[Strategy::Shred, Strategy::ShredSkew, Strategy::Standard],
            0.0,
        );
        println!(
            "skew {skew}: shred={} ms ({:.2} MiB)  shred-skew={} ms ({:.2} MiB)  standard={} ms ({:.2} MiB)",
            rows[0].time_cell().trim(), rows[0].stats.shuffled_mib(),
            rows[1].time_cell().trim(), rows[1].stats.shuffled_mib(),
            rows[2].time_cell().trim(), rows[2].stats.shuffled_mib(),
        );
    }
}
