//! TPC-H nested analytics: build the customer->order->lineitem hierarchy from
//! the flat tables, then run the nested-to-nested aggregation query under all
//! strategies and report runtimes and shuffle volume (a one-cell slice of
//! Figure 7).
//!
//! Run with `cargo run --release --example tpch_nested_analytics`.

use trance::compiler::Strategy;
use trance::tpch::{QueryVariant, TpchConfig};
use trance_bench::{run_tpch_query, Family};

fn main() {
    let cfg = TpchConfig::new(0.2, 0);
    println!("TPC-H nested-to-nested (depth 2, narrow), scale 0.2\n");
    let strategies = [
        Strategy::Shred,
        Strategy::ShredUnshred,
        Strategy::Standard,
        Strategy::Baseline,
    ];
    let rows = run_tpch_query(
        &cfg,
        Family::NestedToNested,
        2,
        QueryVariant::Narrow,
        &strategies,
        0.0,
    );
    for r in rows {
        println!(
            "{:>16}: {} ms   shuffled {} tuples ({:.2} MiB)",
            r.strategy.label(),
            r.time_cell().trim(),
            r.stats.shuffled_tuples,
            r.stats.shuffled_mib()
        );
    }
}
