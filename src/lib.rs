//! # trance
//!
//! Facade crate of **trance-rs**, a Rust reproduction of *"Scalable Querying
//! of Nested Data"* (Smith, Benedikt, Nikolic, Shaikhha — VLDB 2020).
//!
//! It re-exports the public API of every workspace crate:
//!
//! * [`nrc`] — the NRC language, values, type checker and reference evaluator;
//! * [`algebra`] — the plan language and optimizer;
//! * [`dist`] — the simulated distributed bulk-collection engine;
//! * [`store`] — the out-of-core spill subsystem (frame files, governor);
//! * [`shred`] — value and query shredding, materialization, unshredding;
//! * [`compiler`] — the standard / shredded / skew-aware pipelines;
//! * [`tpch`] and [`biomed`] — the paper's two benchmarks.
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! binaries regenerating the paper's figures.

pub use trance_algebra as algebra;
pub use trance_biomed as biomed;
pub use trance_compiler as compiler;
pub use trance_dist as dist;
pub use trance_nrc as nrc;
pub use trance_shred as shred;
pub use trance_store as store;
pub use trance_tpch as tpch;
