//! Repository-level integration tests: the whole stack (NRC -> shredding ->
//! distributed execution -> unshredding) against the reference evaluator,
//! plus randomized-input tests on the core invariants.
//!
//! The randomized tests use a deterministic seeded generator (the workspace
//! builds offline, so `proptest` is unavailable): every case is reproducible
//! from its iteration index.

use trance::compiler::{collect_unshredded, run_query, InputSet, QuerySpec, RunResult, Strategy};
use trance::dist::{ClusterConfig, DistContext};
use trance::nrc::builder::*;
use trance::nrc::{eval, Bag, Env, Value};
use trance::shred::{nesting_structure, shred_value, unshred_value, ShreddedInputDecl};
use trance::tpch::{
    flat_to_nested, generate, nested_to_nested, nesting_structure_for_depth, QueryVariant,
    TpchConfig,
};

#[test]
fn tpch_nested_to_nested_depth2_matches_reference_for_all_strategies() {
    let cfg = TpchConfig::new(0.05, 1);
    let data = generate(&cfg);
    let env = Env::from_bindings([
        ("Lineitem", Value::Bag(data.lineitem.clone())),
        ("Orders", Value::Bag(data.orders.clone())),
        ("Customer", Value::Bag(data.customer.clone())),
        ("Nation", Value::Bag(data.nation.clone())),
        ("Region", Value::Bag(data.region.clone())),
        ("Part", Value::Bag(data.part.clone())),
    ]);
    let nested = eval(&flat_to_nested(2, QueryVariant::Narrow), &env)
        .unwrap()
        .into_bag()
        .unwrap();
    let query = nested_to_nested(2, QueryVariant::Narrow);
    let mut ref_env = env.clone();
    ref_env.bind("Nested", Value::Bag(nested.clone()));
    let expected = eval(&query, &ref_env).unwrap().into_bag().unwrap();

    let ctx = DistContext::new(ClusterConfig::new(3, 8).with_broadcast_limit(1024));
    let mut inputs = InputSet::new(ctx);
    inputs.add_flat("Part", data.part.clone()).unwrap();
    inputs.add_nested("Nested", nested).unwrap();
    let spec = QuerySpec::new(
        "nn2",
        query,
        vec![ShreddedInputDecl::new(
            "Nested",
            nesting_structure_for_depth(2),
        )],
    );
    for strategy in [
        Strategy::Standard,
        Strategy::Shred,
        Strategy::ShredUnshred,
        Strategy::ShredSkew,
    ] {
        let outcome = run_query(&spec, &inputs, strategy);
        let produced = match &outcome.result {
            RunResult::Nested(d) => d.collect_bag(),
            RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
            RunResult::Failed(e) => panic!("{} failed: {e}", strategy.label()),
        };
        assert!(
            canonicalize(&expected).multiset_eq(&canonicalize(&produced)),
            "{} diverged from the reference evaluator",
            strategy.label()
        );
    }
}

/// Sorts every nested bag so multiset comparison ignores order at all levels.
fn canonicalize(bag: &Bag) -> Bag {
    fn canon(v: &Value) -> Value {
        match v {
            // Distributed aggregation adds floating-point values in a
            // different order than the sequential reference evaluator; round
            // so the comparison ignores that associativity noise.
            Value::Real(r) => Value::Real((r * 1e6).round() / 1e6),
            Value::Bag(b) => {
                let mut items: Vec<Value> = b.iter().map(canon).collect();
                items.sort();
                Value::Bag(Bag::new(items))
            }
            Value::Tuple(t) => {
                let mut fields: Vec<(String, Value)> =
                    t.iter().map(|(n, v)| (n.to_string(), canon(v))).collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Tuple(trance::nrc::Tuple::new(fields))
            }
            other => other.clone(),
        }
    }
    bag.iter().map(canon).collect()
}

// ---------------------------------------------------------------------------
// randomized-input tests (deterministic seeded generation)
// ---------------------------------------------------------------------------

/// SplitMix64: tiny deterministic generator for the randomized tests.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn scalar(&mut self) -> Value {
        match self.below(4) {
            0 => Value::Int(self.below(1000) as i64 - 500),
            1 => Value::Real(self.below(400) as f64 / 4.0),
            2 => {
                let len = self.below(7) as usize;
                let s: String = (0..len)
                    .map(|_| (b'a' + self.below(26) as u8) as char)
                    .collect();
                Value::str(s)
            }
            _ => Value::Bool(self.below(2) == 0),
        }
    }

    /// Arbitrary two-level nested bag with the COP-like shape.
    fn nested_bag(&mut self) -> Bag {
        (0..self.below(6))
            .map(|_| {
                let name = self.scalar();
                let items: Vec<Value> = (0..self.below(4))
                    .map(|_| {
                        Value::tuple([
                            ("k", Value::Int(self.below(256) as i64)),
                            ("v", self.scalar()),
                        ])
                    })
                    .collect();
                Value::tuple([("name", name), ("items", Value::bag(items))])
            })
            .collect()
    }
}

/// Value shredding followed by unshredding is the identity (up to bag order).
#[test]
fn prop_shred_unshred_roundtrip() {
    let ty = trance::nrc::Type::bag_of([
        ("name", trance::nrc::Type::Unknown),
        (
            "items",
            trance::nrc::Type::bag_of([
                ("k", trance::nrc::Type::int()),
                ("v", trance::nrc::Type::Unknown),
            ]),
        ),
    ]);
    let structure = nesting_structure(&ty).unwrap();
    for seed in 0..64 {
        let bag = Gen(seed).nested_bag();
        let shredded = shred_value(&bag).unwrap();
        let rebuilt = unshred_value(&shredded, &structure).unwrap();
        assert!(
            canonicalize(&bag).multiset_eq(&canonicalize(&rebuilt)),
            "roundtrip diverged for seed {seed}"
        );
    }
}

/// The distributed engine's join + nest agree with the reference evaluator
/// on arbitrary flat relations (the Γ⊎ / ⋈ correctness invariant).
#[test]
fn prop_distributed_grouping_matches_local() {
    for seed in 0..64 {
        let mut gen = Gen(seed);
        let n = gen.below(40) as usize;
        let rows: Vec<Value> = (0..n)
            .map(|i| {
                Value::tuple([
                    ("k", Value::Int(gen.below(8) as i64)),
                    ("v", Value::Int(i as i64)),
                ])
            })
            .collect();
        let query = group_by(var("R"), &["k"], "grp");
        let expected = eval(
            &query,
            &Env::from_bindings([("R", Value::bag(rows.clone()))]),
        )
        .unwrap()
        .into_bag()
        .unwrap();
        let ctx = DistContext::new(ClusterConfig::new(2, 4));
        let mut inputs = InputSet::new(ctx);
        inputs.add_flat("R", Bag::new(rows)).unwrap();
        let spec = QuerySpec::new("grp", query, vec![]);
        let outcome = run_query(&spec, &inputs, Strategy::Standard);
        let produced = outcome.result.nested_bag().unwrap();
        assert!(
            canonicalize(&expected).multiset_eq(&canonicalize(&produced)),
            "grouping diverged for seed {seed}"
        );
    }
}
