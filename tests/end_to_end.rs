//! Repository-level integration tests: the whole stack (NRC -> shredding ->
//! distributed execution -> unshredding) against the reference evaluator,
//! plus property-based tests on the core invariants.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use trance::compiler::{collect_unshredded, run_query, InputSet, QuerySpec, RunResult, Strategy};
use trance::dist::{ClusterConfig, DistContext};
use trance::nrc::builder::*;
use trance::nrc::{eval, Bag, Env, Value};
use trance::shred::{nesting_structure, shred_value, unshred_value, ShreddedInputDecl};
use trance::tpch::{flat_to_nested, generate, nested_to_nested, nesting_structure_for_depth, QueryVariant, TpchConfig};

#[test]
fn tpch_nested_to_nested_depth2_matches_reference_for_all_strategies() {
    let cfg = TpchConfig::new(0.05, 1);
    let data = generate(&cfg);
    let env = Env::from_bindings([
        ("Lineitem", Value::Bag(data.lineitem.clone())),
        ("Orders", Value::Bag(data.orders.clone())),
        ("Customer", Value::Bag(data.customer.clone())),
        ("Nation", Value::Bag(data.nation.clone())),
        ("Region", Value::Bag(data.region.clone())),
        ("Part", Value::Bag(data.part.clone())),
    ]);
    let nested = eval(&flat_to_nested(2, QueryVariant::Narrow), &env)
        .unwrap()
        .into_bag()
        .unwrap();
    let query = nested_to_nested(2, QueryVariant::Narrow);
    let mut ref_env = env.clone();
    ref_env.bind("Nested", Value::Bag(nested.clone()));
    let expected = eval(&query, &ref_env).unwrap().into_bag().unwrap();

    let ctx = DistContext::new(ClusterConfig::new(3, 8).with_broadcast_limit(1024));
    let mut inputs = InputSet::new(ctx);
    inputs.add_flat("Part", data.part.clone()).unwrap();
    inputs.add_nested("Nested", nested).unwrap();
    let spec = QuerySpec::new(
        "nn2",
        query,
        vec![ShreddedInputDecl::new("Nested", nesting_structure_for_depth(2))],
    );
    for strategy in [Strategy::Standard, Strategy::Shred, Strategy::ShredUnshred, Strategy::ShredSkew] {
        let outcome = run_query(&spec, &inputs, strategy);
        let produced = match &outcome.result {
            RunResult::Nested(d) => d.collect_bag(),
            RunResult::Shredded(out) => collect_unshredded(out).unwrap(),
            RunResult::Failed(e) => panic!("{} failed: {e}", strategy.label()),
        };
        assert!(
            canonicalize(&expected).multiset_eq(&canonicalize(&produced)),
            "{} diverged from the reference evaluator",
            strategy.label()
        );
    }
}

/// Sorts every nested bag so multiset comparison ignores order at all levels.
fn canonicalize(bag: &Bag) -> Bag {
    fn canon(v: &Value) -> Value {
        match v {
            // Distributed aggregation adds floating-point values in a
            // different order than the sequential reference evaluator; round
            // so the comparison ignores that associativity noise.
            Value::Real(r) => Value::Real((r * 1e6).round() / 1e6),
            Value::Bag(b) => {
                let mut items: Vec<Value> = b.iter().map(canon).collect();
                items.sort();
                Value::Bag(Bag::new(items))
            }
            Value::Tuple(t) => {
                let mut fields: Vec<(String, Value)> =
                    t.iter().map(|(n, v)| (n.to_string(), canon(v))).collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Tuple(trance::nrc::Tuple::new(fields))
            }
            other => other.clone(),
        }
    }
    bag.iter().map(canon).collect()
}

// ---------------------------------------------------------------------------
// property-based tests
// ---------------------------------------------------------------------------

fn arb_scalar() -> impl proptest::strategy::Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(|i| Value::Int(i % 1000)),
        (0..100i64).prop_map(|r| Value::Real(r as f64 / 4.0)),
        "[a-z]{0,6}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Arbitrary two-level nested bags with the COP-like shape.
fn arb_nested_bag() -> impl proptest::strategy::Strategy<Value = Bag> {
    let inner = proptest::collection::vec((any::<u8>(), arb_scalar()), 0..4).prop_map(|items| {
        Value::bag(
            items
                .into_iter()
                .map(|(k, v)| Value::tuple([("k", Value::Int(k as i64)), ("v", v)]))
                .collect(),
        )
    });
    proptest::collection::vec((arb_scalar(), inner), 0..6).prop_map(|rows| {
        rows.into_iter()
            .map(|(name, inner)| Value::tuple([("name", name), ("items", inner)]))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Value shredding followed by unshredding is the identity (up to bag order).
    #[test]
    fn prop_shred_unshred_roundtrip(bag in arb_nested_bag()) {
        let ty = trance::nrc::Type::bag_of([
            ("name", trance::nrc::Type::Unknown),
            ("items", trance::nrc::Type::bag_of([
                ("k", trance::nrc::Type::int()),
                ("v", trance::nrc::Type::Unknown),
            ])),
        ]);
        let shredded = shred_value(&bag).unwrap();
        let structure = nesting_structure(&ty).unwrap();
        let rebuilt = unshred_value(&shredded, &structure).unwrap();
        prop_assert!(canonicalize(&bag).multiset_eq(&canonicalize(&rebuilt)));
    }

    /// The distributed engine's join + nest agree with the reference evaluator
    /// on arbitrary flat relations (the Γ⊎ / ⋈ correctness invariant).
    #[test]
    fn prop_distributed_grouping_matches_local(keys in proptest::collection::vec(0..8i64, 0..40)) {
        let rows: Vec<Value> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| Value::tuple([("k", Value::Int(*k)), ("v", Value::Int(i as i64))]))
            .collect();
        let query = group_by(var("R"), &["k"], "grp");
        let expected = eval(&query, &Env::from_bindings([("R", Value::bag(rows.clone()))]))
            .unwrap()
            .into_bag()
            .unwrap();
        let ctx = DistContext::new(ClusterConfig::new(2, 4));
        let mut inputs = InputSet::new(ctx);
        inputs.add_flat("R", Bag::new(rows)).unwrap();
        let spec = QuerySpec::new("grp", query, vec![]);
        let outcome = run_query(&spec, &inputs, Strategy::Standard);
        let produced = outcome.result.nested_bag().unwrap();
        prop_assert!(canonicalize(&expected).multiset_eq(&canonicalize(&produced)));
    }
}
